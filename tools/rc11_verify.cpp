// rc11-verify — command-line Owicki-Gries outline checker: parse a program
// with an `outline { ... }` block and check the outline over the reachable
// state space (Sections 5.2-5.3 of the paper).
//
// Usage:
//   rc11-verify [options] program.rc11
//
// Options:
//   --max-states N       exploration bound (default 1000000)
//   --threads N          exploration workers (0 = hardware, default 1;
//                        traces and witnesses work at every thread count)
//   --no-interference    skip the pairwise Owicki-Gries side condition
//   --all-failures       report every failed obligation, not just the first
//   --trace              include a counterexample run with each failure
//   --witness FILE       write the first failure as a JSON witness (implies
//                        --trace; minimized before emission)
//   --replay FILE        re-execute a JSON witness against the program
//                        instead of checking; exit 0 iff every step replays
//
// Exit status: 0 valid, 1 usage/parse errors, 2 outline invalid (or --replay
// diverged), 3 inconclusive (state bound hit).

#include <charconv>
#include <iostream>
#include <string>

#include "og/proof_outline.hpp"
#include "parser/parser.hpp"
#include "witness/witness.hpp"

namespace {

int usage() {
  std::cerr << "usage: rc11-verify [--max-states N] [--threads N] "
               "[--no-interference] [--all-failures] [--trace] "
               "[--witness FILE] [--replay FILE] program.rc11\n";
  return 1;
}

/// Whole-string numeric parse; rejects "abc", "8x", "" instead of aborting.
template <typename T>
bool parse_num(const std::string& s, T& out) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rc11;

  std::string path;
  og::OutlineCheckOptions opts;
  std::string witness_path;
  std::string replay_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-states") {
      if (++i >= argc || !parse_num(argv[i], opts.max_states)) return usage();
    } else if (arg == "--threads") {
      if (++i >= argc || !parse_num(argv[i], opts.num_threads)) return usage();
    } else if (arg == "--no-interference") {
      opts.check_interference = false;
    } else if (arg == "--all-failures") {
      opts.stop_at_first_failure = false;
    } else if (arg == "--trace") {
      opts.track_traces = true;
    } else if (arg == "--witness") {
      if (++i >= argc) return usage();
      witness_path = argv[i];
      opts.track_traces = true;  // witnesses ride on the recorded parents
    } else if (arg == "--replay") {
      if (++i >= argc) return usage();
      replay_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  try {
    const auto program = parser::parse_file(path);
    if (!replay_path.empty()) {
      const auto w = witness::load(replay_path);
      const auto r = witness::replay(program.sys, w);
      if (r.ok) {
        std::cout << "replay OK: " << w.steps.size()
                  << " step(s) re-executed, final digest matches\n";
        return 0;
      }
      std::cout << "replay FAILED after " << r.steps_applied
                << " step(s): " << r.error << "\n";
      return 2;
    }
    if (!program.outline) {
      std::cerr << "rc11-verify: " << path << " has no outline { ... } block\n";
      return 1;
    }
    const auto result =
        og::check_outline(program.sys, *program.outline, opts);
    std::cout << "states explored:     " << result.stats.states << "\n"
              << "obligations checked: " << result.obligations_checked << "\n";
    if (result.stats.states >= opts.max_states) {
      std::cout << "INCONCLUSIVE: state bound reached\n";
      return 3;
    }
    if (result.valid) {
      std::cout << "outline VALID"
                << (opts.check_interference ? " (incl. interference freedom)"
                                            : "")
                << "\n";
      if (!witness_path.empty()) {
        std::cout << "no failures; " << witness_path << " not written\n";
      }
      return 0;
    }
    std::cout << "outline INVALID — " << result.failures.size()
              << " failed obligation(s):\n";
    for (const auto& failure : result.failures) {
      std::cout << "  " << failure.obligation << "\n";
      if (!failure.trace.empty()) {
        std::cout << "  run:\n";
        for (const auto& step : failure.trace) {
          std::cout << "    " << step << "\n";
        }
      }
      std::cout << "  at configuration:\n";
      std::istringstream dump{failure.state_dump};
      std::string line;
      while (std::getline(dump, line)) {
        std::cout << "    " << line << "\n";
      }
    }
    if (!witness_path.empty()) {
      bool written = false;
      for (const auto& failure : result.failures) {
        if (!failure.witness) continue;
        const auto w = witness::minimize(program.sys, *failure.witness);
        witness::save(w, witness_path);
        std::cout << "witness (" << w.steps.size() << " step(s)) written to "
                  << witness_path << "\n";
        written = true;
        break;
      }
      if (!written) {
        std::cout << "no witness recorded; " << witness_path
                  << " not written\n";
      }
    }
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "rc11-verify: " << e.what() << "\n";
    return 1;
  }
}
