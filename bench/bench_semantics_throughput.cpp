// Experiment F4: throughput of the combined program semantics (Fig. 4 over
// Fig. 5) — states and transitions explored per second on representative
// programs.  This is the figure of merit for the substitution of Isabelle
// proofs by exhaustive checking: it bounds the instantiation sizes every
// other experiment can afford.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"

namespace {

using namespace rc11;

void BM_ExploreMP(benchmark::State& state) {
  std::uint64_t states = 0, transitions = 0;
  for (auto _ : state) {
    auto test = litmus::mp_release_acquire();
    const auto result = explore::explore(test.sys);
    states = result.stats.states;
    transitions = result.stats.transitions;
    benchmark::DoNotOptimize(states);
  }
  state.counters["states_per_s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["transitions_per_s"] = benchmark::Counter(
      static_cast<double>(transitions * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreMP);

void BM_ExploreIRIW(benchmark::State& state) {
  std::uint64_t states = 0, transitions = 0;
  for (auto _ : state) {
    auto test = litmus::iriw_release_acquire();
    const auto result = explore::explore(test.sys);
    states = result.stats.states;
    transitions = result.stats.transitions;
    benchmark::DoNotOptimize(states);
  }
  state.counters["states_per_s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["transitions_per_s"] = benchmark::Counter(
      static_cast<double>(transitions * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreIRIW);

/// Lock-client exploration scaling: threads × rounds of the most-general
/// client over the ticket lock (the largest concrete state spaces in the
/// refinement experiments).
void BM_ExploreTicketClient(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto rounds = static_cast<unsigned>(state.range(1));
  std::uint64_t states = 0;
  for (auto _ : state) {
    locks::TicketLock lock;
    const auto sys = locks::instantiate(locks::mgc_client(threads, rounds), lock);
    const auto result = explore::explore(sys);
    states = result.stats.states;
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
  state.SetLabel(std::to_string(threads) + " threads x " +
                 std::to_string(rounds) + " rounds");
}
BENCHMARK(BM_ExploreTicketClient)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({3, 1});

/// Parallel exploration scaling (experiment F4-par): the same ticket-lock
/// client state space explored with a varying worker count.  UseRealTime()
/// because the workers run inside explore() — CPU time would charge all
/// workers' cycles to the benchmark and hide any speedup.
void BM_ExploreTicketClientThreads(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  locks::TicketLock lock;
  const auto sys = locks::instantiate(locks::mgc_client(2, 2), lock);
  explore::ExploreOptions opts;
  opts.num_threads = workers;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto result = explore::explore(sys, opts);
    states = result.stats.states;
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
  state.SetLabel(std::to_string(workers) + " workers");
}
BENCHMARK(BM_ExploreTicketClientThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// Wall-clock time of one exhaustive exploration with the given worker
/// count, for the speedup verdict line below.
double explore_seconds(const lang::System& sys, unsigned workers) {
  explore::ExploreOptions opts;
  opts.num_threads = workers;
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = explore::explore(sys, opts);
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(result.stats.states);
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Experiment F6: state-representation efficiency of the exploration hot
/// path — states/second and visited-set bytes/state on the largest
/// workloads.  One timed exhaustive run per workload (best of three, after a
/// warm-up), reported as verdict lines and as the BENCH_explore.json cases
/// CI diffs against bench/baseline_explore.json.
void report_state_repr(rc11::bench::JsonReport& json) {
  struct Workload {
    std::string name;
    lang::System sys;
    explore::ExploreOptions opts;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"explore_mp", litmus::mp_release_acquire().sys, {}});
  workloads.push_back(
      {"explore_iriw", litmus::iriw_release_acquire().sys, {}});
  {
    locks::TicketLock lock;
    const auto ticket_2x2 =
        locks::instantiate(locks::mgc_client(2, 2), lock);
    workloads.push_back({"explore_ticket_2x2", ticket_2x2, {}});
    // Witness-tracking cost guard: the same workload with trace capture on
    // (parent links + labels recorded per interned state).  The untraced
    // case above doubles as the off-path zero-cost guard — it must not
    // regress when witness code evolves.
    explore::ExploreOptions traced;
    traced.track_traces = true;
    workloads.push_back({"explore_ticket_2x2_traced", ticket_2x2, traced});
    workloads.push_back(
        {"explore_ticket_3x1",
         locks::instantiate(locks::mgc_client(3, 1), lock), {}});
    // POR headline cases (tentpole of the engine layer): the targeted
    // benchmark families with the reduction off and on.  The _full cases
    // also pin the POR-off path — their exact state counts must not move
    // when the reduction evolves.  bench_por has the complete family sweep.
    const auto worker_2x2 =
        locks::instantiate(locks::worker_client(2, 2, 4), lock);
    explore::ExploreOptions por;
    por.por = true;
    workloads.push_back({"explore_ticket_worker_2x2w4", worker_2x2, {}});
    workloads.push_back({"explore_ticket_worker_2x2w4_por", worker_2x2, por});
    workloads.push_back({"explore_mp_compute_w4", litmus::mp_compute(4), {}});
    workloads.push_back(
        {"explore_mp_compute_w4_por", litmus::mp_compute(4), por});
  }

  for (const auto& [name, sys, opts] : workloads) {
    explore::ExploreResult result = explore::explore(sys, opts);
    double best_s = 1e9;
    for (int i = 0; i < 3; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      result = explore::explore(sys, opts);
      const auto t1 = std::chrono::steady_clock::now();
      best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
    }
    const auto states = result.stats.states;
    const double states_per_s = static_cast<double>(states) / best_s;
    const double bytes_per_state =
        static_cast<double>(result.stats.visited_bytes) /
        static_cast<double>(states);
    std::ostringstream detail;
    detail << name << ": " << states << " states, " << best_s * 1e3 << " ms, "
           << states_per_s / 1e3 << "k states/s, visited set "
           << result.stats.visited_bytes << " B (" << bytes_per_state
           << " B/state), peak frontier " << result.stats.peak_frontier;
    rc11::bench::verdict("F6", states > 0, detail.str());
    json.add(name,
             {{"states", static_cast<double>(states)},
              {"wall_ms", best_s * 1e3},
              {"states_per_s", states_per_s},
              {"visited_bytes",
               static_cast<double>(result.stats.visited_bytes)},
              {"bytes_per_state", bytes_per_state},
              {"peak_frontier",
               static_cast<double>(result.stats.peak_frontier)}});
  }
}

void report_parallel_speedup() {
  locks::TicketLock lock;
  const auto sys = locks::instantiate(locks::mgc_client(2, 2), lock);
  // Warm up allocators etc., then take the best of three per configuration.
  explore_seconds(sys, 1);
  double seq = 1e9, par = 1e9;
  for (int i = 0; i < 3; ++i) seq = std::min(seq, explore_seconds(sys, 1));
  for (int i = 0; i < 3; ++i) par = std::min(par, explore_seconds(sys, 8));
  const double speedup = seq / par;
  std::ostringstream detail;
  detail << "ticket-lock mgc(2,2) client: 1 thread " << seq * 1e3
         << " ms, 8 threads " << par * 1e3 << " ms, speedup " << speedup
         << "x (hardware_concurrency="
         << std::thread::hardware_concurrency() << ")";
  rc11::bench::verdict("F4-par", speedup > 0.0, detail.str());
}

}  // namespace

int main(int argc, char** argv) {
  rc11::bench::JsonReport json;
  json.parse_args(argc, argv);
  report_state_repr(json);
  report_parallel_speedup();
  if (!json.write("bench_semantics_throughput")) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
