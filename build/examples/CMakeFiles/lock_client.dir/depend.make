# Empty dependencies file for lock_client.
# This may be replaced when dependencies are built.
