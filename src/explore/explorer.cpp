#include "explore/explorer.hpp"

#include <algorithm>
#include <deque>

#include "support/diagnostics.hpp"
#include "support/hash.hpp"

namespace rc11::explore {

namespace {

/// Visited set keyed by state hash with full-encoding confirmation, so hash
/// collisions can never make exploration unsound (skip a genuinely new
/// state) — they only cost an extra comparison.
class VisitedSet {
 public:
  /// Returns true iff the encoding was newly inserted.
  bool insert(std::vector<std::uint64_t> encoding) {
    support::WordHasher h;
    for (const auto w : encoding) h.add(w);
    auto& bucket = buckets_[h.digest()];
    for (const auto idx : bucket) {
      if (encodings_[idx] == encoding) return false;
    }
    bucket.push_back(encodings_.size());
    encodings_.push_back(std::move(encoding));
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return encodings_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets_;
  std::vector<std::vector<std::uint64_t>> encodings_;
};

struct TraceNode {
  std::int64_t parent = -1;
  std::string label;
};

struct Frontier {
  Config cfg;
  std::int64_t trace_node = -1;
};

}  // namespace

namespace {

/// The thread to expand exclusively under local-step fusion, if any.
std::optional<ThreadId> fusible_thread(const System& sys, const Config& cfg) {
  for (ThreadId t = 0; t < sys.num_threads(); ++t) {
    if (cfg.thread_done(sys, t)) continue;
    const auto kind = sys.code(t)[cfg.pc[t]].kind;
    if (kind == lang::IKind::Assign || kind == lang::IKind::Branch ||
        kind == lang::IKind::Jump) {
      return t;
    }
  }
  return std::nullopt;
}

}  // namespace

ExploreResult explore(const System& sys, const ExploreOptions& options,
                      const Invariant& invariant) {
  ExploreResult result;
  VisitedSet visited;
  std::vector<TraceNode> trace_nodes;
  VisitedSet final_dedup;

  std::deque<Frontier> frontier;
  {
    Config init = lang::initial_config(sys);
    visited.insert(init.encode());
    if (options.track_traces) trace_nodes.push_back({-1, "init"});
    frontier.push_back({std::move(init), options.track_traces ? 0 : -1});
  }

  const auto build_trace = [&](std::int64_t node) {
    std::vector<std::string> labels;
    for (std::int64_t n = node; n >= 0; n = trace_nodes[static_cast<std::size_t>(n)].parent) {
      labels.push_back(trace_nodes[static_cast<std::size_t>(n)].label);
    }
    std::reverse(labels.begin(), labels.end());
    return labels;
  };

  while (!frontier.empty()) {
    if (result.stats.states >= options.max_states) {
      result.truncated = true;
      break;
    }
    result.stats.max_frontier =
        std::max<std::uint64_t>(result.stats.max_frontier, frontier.size());
    const bool bfs = options.strategy == SearchStrategy::Bfs;
    Frontier item = bfs ? std::move(frontier.front()) : std::move(frontier.back());
    if (bfs) {
      frontier.pop_front();
    } else {
      frontier.pop_back();
    }
    const Config& cfg = item.cfg;
    result.stats.states += 1;

    if (invariant) {
      if (auto violation = invariant(sys, cfg)) {
        result.violations.push_back(
            {*violation, cfg.to_string(sys),
             options.track_traces ? build_trace(item.trace_node)
                                  : std::vector<std::string>{}});
        if (options.stop_on_violation) break;
      }
    }

    std::vector<Step> steps;
    if (options.fuse_local_steps) {
      if (const auto t = fusible_thread(sys, cfg)) {
        steps = lang::thread_successors(sys, cfg, *t, options.track_traces);
      } else {
        steps = lang::successors(sys, cfg, options.track_traces);
      }
    } else {
      steps = lang::successors(sys, cfg, options.track_traces);
    }
    if (steps.empty()) {
      if (cfg.all_done(sys)) {
        result.stats.finals += 1;
        if (options.collect_finals && final_dedup.insert(cfg.encode())) {
          result.final_configs.push_back(cfg);
        }
      } else {
        result.stats.blocked += 1;
      }
      continue;
    }

    for (auto& step : steps) {
      result.stats.transitions += 1;
      if (visited.insert(step.after.encode())) {
        std::int64_t node = -1;
        if (options.track_traces) {
          node = static_cast<std::int64_t>(trace_nodes.size());
          trace_nodes.push_back({item.trace_node, std::move(step.label)});
        }
        frontier.push_back({std::move(step.after), node});
      }
    }
  }

  return result;
}

std::vector<std::vector<lang::Value>> final_register_values(
    const System& sys, const ExploreResult& result,
    const std::vector<lang::Reg>& regs) {
  std::vector<std::vector<lang::Value>> outcomes;
  for (const auto& cfg : result.final_configs) {
    std::vector<lang::Value> tuple;
    tuple.reserve(regs.size());
    for (const auto& r : regs) {
      RC11_REQUIRE(r.thread < cfg.regs.size() && r.id < cfg.regs[r.thread].size(),
                   "register out of range in outcome extraction");
      tuple.push_back(cfg.regs[r.thread][r.id]);
    }
    if (std::find(outcomes.begin(), outcomes.end(), tuple) == outcomes.end()) {
      outcomes.push_back(std::move(tuple));
    }
  }
  std::sort(outcomes.begin(), outcomes.end());
  (void)sys;
  return outcomes;
}

bool outcome_reachable(const System& sys, const ExploreResult& result,
                       const std::vector<lang::Reg>& regs,
                       const std::vector<lang::Value>& values) {
  const auto outcomes = final_register_values(sys, result, regs);
  return std::find(outcomes.begin(), outcomes.end(), values) != outcomes.end();
}

}  // namespace rc11::explore
