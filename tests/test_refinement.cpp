// Tests for the contextual-refinement framework (Section 6): client
// projections, Definition 5 state refinement, the Definition 8 forward-
// simulation game (Propositions 9 and 10 for the sequence lock and ticket
// lock, plus the CAS spinlock), negative results for broken implementations,
// and the bounded Definition 6/7 trace-inclusion oracle.

#include <gtest/gtest.h>

#include "explore/explorer.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "refinement/refinement.hpp"

namespace {

using namespace rc11;
using lang::c;
using lang::Config;
using lang::System;
using locks::AbstractLock;
using locks::CasSpinLock;
using locks::ClientProgram;
using locks::instantiate;
using locks::SeqLock;
using locks::TicketLock;
using refinement::build_graph;
using refinement::check_forward_simulation;
using refinement::check_trace_inclusion;
using refinement::client_refines;
using refinement::project_client;

// --- client projection -------------------------------------------------------

TEST(ClientProjection, IgnoresLibraryState) {
  System sys;
  const auto x = sys.client_var("x", 0);
  const auto g = sys.library_var("g", 0);
  auto t0 = sys.thread();
  t0.store(g, c(1));
  t0.store(x, c(1));

  auto cfg = lang::initial_config(sys);
  const auto p0 = project_client(sys, cfg);
  cfg = lang::thread_successors(sys, cfg, 0)[0].after;  // library write
  const auto p1 = project_client(sys, cfg);
  EXPECT_EQ(p0, p1) << "library writes must be invisible to the client";
  cfg = lang::thread_successors(sys, cfg, 0)[0].after;  // client write
  const auto p2 = project_client(sys, cfg);
  EXPECT_NE(p0, p2);
}

TEST(ClientProjection, IgnoresLibraryRegisters) {
  System sys;
  sys.client_var("x", 0);
  auto t0 = sys.thread();
  auto lr = t0.reg("lib_r", 0, memsem::Component::Library);
  t0.assign(lr, c(9));

  auto cfg = lang::initial_config(sys);
  const auto p0 = project_client(sys, cfg);
  cfg = lang::thread_successors(sys, cfg, 0)[0].after;
  EXPECT_EQ(p0, project_client(sys, cfg));
}

TEST(ClientProjection, RefinementIsObsInclusion) {
  // Build two configurations of the same system differing only in how far a
  // thread's view has advanced: the further view refines the earlier one.
  System sys;
  const auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store_rel(x, c(1));
  auto t1 = sys.thread();
  auto r = t1.reg("r");
  t1.load_acq(r, x);

  auto base = lang::initial_config(sys);
  base = lang::thread_successors(sys, base, 0)[0].after;  // x :=R 1
  // Thread 1 reads either init (view stays) or the new write (view moves).
  const auto steps = lang::thread_successors(sys, base, 1);
  ASSERT_EQ(steps.size(), 2u);
  const Config* stale = nullptr;
  const Config* fresh = nullptr;
  for (const auto& s : steps) {
    if (s.after.regs[1][r.id] == 0) stale = &s.after;
    if (s.after.regs[1][r.id] == 1) fresh = &s.after;
  }
  ASSERT_NE(stale, nullptr);
  ASSERT_NE(fresh, nullptr);
  // Registers differ, so these do not refine each other; but compare views
  // through hand-built projections of the same register state: use the
  // pre-read state vs itself.
  const auto p = project_client(sys, base);
  EXPECT_TRUE(client_refines(p, p)) << "refinement is reflexive";
}

// --- state graphs --------------------------------------------------------------

TEST(StateGraph, MatchesExplorerStateCount) {
  locks::ClientArtifacts art;
  AbstractLock lock;
  const auto sys = instantiate(locks::fig7_client(&art), lock);
  const auto graph = build_graph(sys);
  const auto result = explore::explore(sys);
  EXPECT_EQ(graph.num_states(), result.stats.states);
  EXPECT_EQ(graph.num_edges(), result.stats.transitions);
  EXPECT_FALSE(graph.truncated);
}

TEST(StateGraph, TruncationFlag) {
  locks::ClientArtifacts art;
  SeqLock lock;
  const auto sys = instantiate(locks::fig7_client(&art), lock);
  const auto graph = build_graph(sys, /*max_states=*/10);
  EXPECT_TRUE(graph.truncated);
}

// --- Propositions 9 and 10 ------------------------------------------------------

struct NamedImpl {
  const char* label;
  std::function<std::unique_ptr<locks::LockObject>()> make;
};

class LockSimulation : public ::testing::TestWithParam<int> {
 protected:
  static std::vector<NamedImpl> impls() {
    return {
        {"seqlock", [] { return std::make_unique<SeqLock>(); }},
        {"ticketlock", [] { return std::make_unique<TicketLock>(); }},
        {"cas-spinlock", [] { return std::make_unique<CasSpinLock>(); }},
        {"ttas-lock", [] { return std::make_unique<locks::TTASLock>(); }},
    };
  }
};

TEST_P(LockSimulation, Fig7ClientForwardSimulatesAbstractLock) {
  const auto impl = impls()[static_cast<std::size_t>(GetParam())];
  AbstractLock abs;
  const auto abs_sys = instantiate(locks::fig7_client(), abs);
  auto conc_lock = impl.make();
  const auto conc_sys = instantiate(locks::fig7_client(), *conc_lock);
  const auto result = check_forward_simulation(abs_sys, conc_sys);
  EXPECT_TRUE(result.holds) << impl.label << ": " << result.diagnosis;
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.concrete_states, result.abstract_states)
      << "implementations have strictly richer state spaces";
}

TEST_P(LockSimulation, MgcClientForwardSimulatesAbstractLock) {
  const auto impl = impls()[static_cast<std::size_t>(GetParam())];
  AbstractLock abs;
  const auto abs_sys = instantiate(locks::mgc_client(2, 1), abs);
  auto conc_lock = impl.make();
  const auto conc_sys = instantiate(locks::mgc_client(2, 1), *conc_lock);
  const auto result = check_forward_simulation(abs_sys, conc_sys);
  EXPECT_TRUE(result.holds) << impl.label << ": " << result.diagnosis;
}

TEST_P(LockSimulation, CounterClientForwardSimulatesAbstractLock) {
  const auto impl = impls()[static_cast<std::size_t>(GetParam())];
  AbstractLock abs;
  const auto abs_sys = instantiate(locks::counter_client(2, 1), abs);
  auto conc_lock = impl.make();
  const auto conc_sys = instantiate(locks::counter_client(2, 1), *conc_lock);
  const auto result = check_forward_simulation(abs_sys, conc_sys);
  EXPECT_TRUE(result.holds) << impl.label << ": " << result.diagnosis;
}

std::string impl_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "seqlock";
    case 1: return "ticketlock";
    case 2: return "cas_spinlock";
    default: return "ttas_lock";
  }
}

INSTANTIATE_TEST_SUITE_P(AllImpls, LockSimulation, ::testing::Range(0, 4),
                         impl_name);

// --- negative results ------------------------------------------------------------

TEST(BrokenLocks, SeqLockWithRelaxedReleaseFailsSimulation) {
  AbstractLock abs;
  const auto abs_sys = instantiate(locks::fig7_client(), abs);
  SeqLock broken{/*releasing_release=*/false};
  const auto conc_sys = instantiate(locks::fig7_client(), broken);
  const auto result = check_forward_simulation(abs_sys, conc_sys);
  EXPECT_FALSE(result.holds)
      << "a relaxed release breaks the specification's publication guarantee";
  EXPECT_FALSE(result.diagnosis.empty());
}

TEST(BrokenLocks, TicketLockWithRelaxedReleaseFailsSimulation) {
  AbstractLock abs;
  const auto abs_sys = instantiate(locks::fig7_client(), abs);
  TicketLock broken{/*releasing_release=*/false};
  const auto conc_sys = instantiate(locks::fig7_client(), broken);
  const auto result = check_forward_simulation(abs_sys, conc_sys);
  EXPECT_FALSE(result.holds);
}

TEST(BrokenLocks, BrokenSeqLockExhibitsStaleClientRead) {
  // Ground truth for the negative simulation results: with the broken lock,
  // the client really can read stale data after "acquiring".
  locks::ClientArtifacts art;
  SeqLock broken{/*releasing_release=*/false};
  const auto sys = instantiate(locks::fig7_client(&art), broken);
  const auto result = explore::explore(sys);
  // art.regs = {ok0, ok1, r1, r2}; look for r1 = 0 with r2 = 5 or similar
  // stale outcomes that the abstract lock forbids.
  const auto outcomes = explore::final_register_values(
      sys, result, {art.regs[2], art.regs[3]});
  bool stale = false;
  for (const auto& o : outcomes) {
    if (!(o[0] == 0 && o[1] == 0) && !(o[0] == 5 && o[1] == 5)) stale = true;
  }
  EXPECT_TRUE(stale) << "broken lock must leak weak behaviour to the client";
}

TEST(CorrectLocks, SeqLockClientOutcomesMatchAbstract) {
  locks::ClientArtifacts abs_art;
  AbstractLock abs;
  const auto abs_sys = instantiate(locks::fig7_client(&abs_art), abs);
  locks::ClientArtifacts conc_art;
  SeqLock conc;
  const auto conc_sys = instantiate(locks::fig7_client(&conc_art), conc);
  const auto abs_out = explore::final_register_values(
      abs_sys, explore::explore(abs_sys), {abs_art.regs[2], abs_art.regs[3]});
  const auto conc_out = explore::final_register_values(
      conc_sys, explore::explore(conc_sys), {conc_art.regs[2], conc_art.regs[3]});
  EXPECT_EQ(abs_out, conc_out);
  const std::vector<std::vector<lang::Value>> expected{{0, 0}, {5, 5}};
  EXPECT_EQ(abs_out, expected);
}

// --- bounded trace inclusion (Defs. 6/7 oracle) -----------------------------------

TEST(TraceInclusion, SeqLockRefinesAbstractOnFig7Client) {
  AbstractLock abs;
  const auto abs_sys = instantiate(locks::fig7_client(), abs);
  SeqLock conc;
  const auto conc_sys = instantiate(locks::fig7_client(), conc);
  const auto result = check_trace_inclusion(abs_sys, conc_sys);
  EXPECT_TRUE(result.holds) << result.what;
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.product_nodes, 0u);
}

TEST(TraceInclusion, BrokenSeqLockViolatesInclusion) {
  AbstractLock abs;
  const auto abs_sys = instantiate(locks::fig7_client(), abs);
  SeqLock broken{/*releasing_release=*/false};
  const auto conc_sys = instantiate(locks::fig7_client(), broken);
  const auto result = check_trace_inclusion(abs_sys, conc_sys);
  EXPECT_FALSE(result.holds);
  EXPECT_FALSE(result.what.empty());
}

TEST(TraceInclusion, ReflexivityOnAbstractSystem) {
  AbstractLock a1, a2;
  const auto s1 = instantiate(locks::fig7_client(), a1);
  const auto s2 = instantiate(locks::fig7_client(), a2);
  const auto result = check_trace_inclusion(s1, s2);
  EXPECT_TRUE(result.holds) << result.what;
}

TEST(TraceInclusion, TicketLockAlsoPasses) {
  AbstractLock abs;
  const auto abs_sys = instantiate(locks::fig7_client(), abs);
  TicketLock conc;
  const auto conc_sys = instantiate(locks::fig7_client(), conc);
  const auto result = check_trace_inclusion(abs_sys, conc_sys);
  EXPECT_TRUE(result.holds) << result.what;
}


// --- failure diagnostics -------------------------------------------------------

TEST(Diagnostics, FailedSimulationCarriesCounterexample) {
  AbstractLock abs;
  const auto abs_sys = instantiate(locks::fig7_client(), abs);
  SeqLock broken{/*releasing_release=*/false};
  const auto conc_sys = instantiate(locks::fig7_client(), broken);
  const auto result = check_forward_simulation(abs_sys, conc_sys);
  ASSERT_FALSE(result.holds);
  ASSERT_FALSE(result.counterexample.empty())
      << "a broken lock should have a concrete run no abstract state matches";
  // The trace must mention the broken relaxed release somewhere before the
  // divergence.
  bool mentions_broken = false;
  for (const auto& step : result.counterexample) {
    if (step.find("BROKEN") != std::string::npos) mentions_broken = true;
  }
  EXPECT_TRUE(mentions_broken) << "counterexample should pass through the "
                                  "relaxed release";
}

TEST(Diagnostics, SuccessfulSimulationHasNoCounterexample) {
  AbstractLock abs;
  const auto abs_sys = instantiate(locks::fig7_client(), abs);
  SeqLock conc;
  const auto conc_sys = instantiate(locks::fig7_client(), conc);
  const auto result = check_forward_simulation(abs_sys, conc_sys);
  ASSERT_TRUE(result.holds);
  EXPECT_TRUE(result.counterexample.empty());
}

TEST(Diagnostics, GraphLabelsOnDemand) {
  System sys;
  const auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store(x, c(1), "x := 1");
  const auto unlabelled = build_graph(sys);
  EXPECT_TRUE(unlabelled.labels.empty());
  const auto labelled = build_graph(sys, 1000, /*want_labels=*/true);
  ASSERT_EQ(labelled.labels.size(), labelled.num_states());
  ASSERT_FALSE(labelled.labels[0].empty());
  EXPECT_NE(labelled.labels[0][0].find("x := 1"), std::string::npos);
}

}  // namespace
