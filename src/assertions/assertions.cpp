#include "assertions/assertions.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/diagnostics.hpp"

namespace rc11::assertions {

using memsem::MemState;
using memsem::OpId;

struct Assertion::Impl {
  std::string name;
  Fn fn;
  ViewFootprint footprint;
};

namespace {

/// Union of two footprints (combinators may evaluate either operand).
ViewFootprint merge_footprints(const ViewFootprint& a, const ViewFootprint& b) {
  ViewFootprint out;
  out.everything = a.everything || b.everything;
  if (out.everything) return out;
  out.entries = a.entries;
  for (const auto& e : b.entries) {
    if (std::find(out.entries.begin(), out.entries.end(), e) ==
        out.entries.end()) {
      out.entries.push_back(e);
    }
  }
  return out;
}

ViewFootprint view_of(ThreadId t, LocId l) {
  return ViewFootprint{false, {{t, l}}};
}

}  // namespace

Assertion::Assertion()
    : impl_(std::make_shared<Impl>(
          Impl{"true", [](const System&, const Config&) { return true; },
               ViewFootprint{}})) {}

Assertion::Assertion(std::string name, Fn fn)
    : Assertion(std::move(name), std::move(fn),
                ViewFootprint{/*everything=*/true, {}}) {}

Assertion::Assertion(std::string name, Fn fn, ViewFootprint footprint)
    : impl_(std::make_shared<Impl>(
          Impl{std::move(name), std::move(fn), std::move(footprint)})) {}

bool Assertion::eval(const System& sys, const Config& cfg) const {
  return impl_->fn(sys, cfg);
}

const std::string& Assertion::name() const { return impl_->name; }

const ViewFootprint& Assertion::footprint() const { return impl_->footprint; }

Assertion Assertion::always() { return Assertion{}; }

Assertion operator&&(Assertion a, Assertion b) {
  const std::string name = "(" + a.name() + " && " + b.name() + ")";
  ViewFootprint fp = merge_footprints(a.footprint(), b.footprint());
  return Assertion{name,
                   [a, b](const System& sys, const Config& cfg) {
                     return a.eval(sys, cfg) && b.eval(sys, cfg);
                   },
                   std::move(fp)};
}

Assertion operator||(Assertion a, Assertion b) {
  const std::string name = "(" + a.name() + " || " + b.name() + ")";
  ViewFootprint fp = merge_footprints(a.footprint(), b.footprint());
  return Assertion{name,
                   [a, b](const System& sys, const Config& cfg) {
                     return a.eval(sys, cfg) || b.eval(sys, cfg);
                   },
                   std::move(fp)};
}

Assertion operator!(Assertion a) {
  ViewFootprint fp = a.footprint();
  return Assertion{"!" + a.name(),
                   [a](const System& sys, const Config& cfg) {
                     return !a.eval(sys, cfg);
                   },
                   std::move(fp)};
}

Assertion implies(Assertion a, Assertion b) {
  const std::string name = "(" + a.name() + " ==> " + b.name() + ")";
  ViewFootprint fp = merge_footprints(a.footprint(), b.footprint());
  return Assertion{name,
                   [a, b](const System& sys, const Config& cfg) {
                     return !a.eval(sys, cfg) || b.eval(sys, cfg);
                   },
                   std::move(fp)};
}

Assertion pred(std::string name, Assertion::Fn fn) {
  return Assertion{std::move(name), std::move(fn)};
}

namespace {

/// dview(view, ops, y) = v of Section 5.1: the view's entry for y is the last
/// write to y, and that write wrote v.
bool dview_is(const MemState& mem, const memsem::View& view, LocId y, Value v) {
  const OpId last = mem.last_op(y);
  return view[y] == last && mem.op(last).value == v;
}

bool is_var_write(const memsem::Op& op) {
  return op.kind == memsem::OpKind::Init || op.kind == memsem::OpKind::Write ||
         op.kind == memsem::OpKind::WriteRel ||
         op.kind == memsem::OpKind::Update;
}

std::string fmt(ThreadId t) { return std::to_string(t); }

}  // namespace

// --- variables ---------------------------------------------------------------

Assertion possible_obs(ThreadId t, LocId x, Value v) {
  const std::string name =
      support::concat("<loc", x, "=", v, ">_", fmt(t));
  return Assertion{name,
                   [t, x, v](const System&, const Config& cfg) {
                     for (const OpId w : cfg.mem.observable(t, x)) {
                       if (cfg.mem.op(w).value == v) return true;
                     }
                     return false;
                   },
                   view_of(t, x)};
}

Assertion definite_obs(ThreadId t, LocId x, Value v) {
  const std::string name =
      support::concat("[loc", x, "=", v, "]_", fmt(t));
  return Assertion{name,
                   [t, x, v](const System&, const Config& cfg) {
                     const OpId last = cfg.mem.last_op(x);
                     return cfg.mem.view_front(t, x) == last &&
                            cfg.mem.op(last).value == v;
                   },
                   view_of(t, x)};
}

Assertion cond_obs(ThreadId t, LocId x, Value u, LocId y, Value v) {
  const std::string name =
      support::concat("<loc", x, "=", u, ">[loc", y, "=", v, "]_", fmt(t));
  return Assertion{name,
                   [t, x, u, y, v](const System&, const Config& cfg) {
                     for (const OpId w : cfg.mem.observable(t, x)) {
                       const auto& op = cfg.mem.op(w);
                       if (op.value != u) continue;
                       if (!op.releasing) return false;
                       if (!dview_is(cfg.mem, op.mview, y, v)) return false;
                     }
                     return true;
                   },
                   view_of(t, x)};
}

Assertion covered_var(LocId x, Value u) {
  const std::string name = support::concat("C_loc", x, "^", u);
  return Assertion{name,
                   [x, u](const System&, const Config& cfg) {
                     const OpId last = cfg.mem.last_op(x);
                     for (const OpId w : cfg.mem.mo(x)) {
                       const auto& op = cfg.mem.op(w);
                       if (op.covered) continue;
                       if (w != last || op.value != u) return false;
                     }
                     return true;
                   },
                   ViewFootprint{}};
}

Assertion hidden_var(LocId x, Value u) {
  const std::string name = support::concat("H_loc", x, "^", u);
  return Assertion{name,
                   [x, u](const System&, const Config& cfg) {
                     bool exists = false;
                     for (const OpId w : cfg.mem.mo(x)) {
                       const auto& op = cfg.mem.op(w);
                       if (!is_var_write(op) || op.value != u) continue;
                       exists = true;
                       if (!op.covered) return false;
                     }
                     return exists;
                   },
                   ViewFootprint{}};
}

// --- lock --------------------------------------------------------------------

namespace {

const char* kind_name(OpKind k) {
  switch (k) {
    case OpKind::LockAcquire: return "acquire";
    case OpKind::LockRelease: return "release";
    case OpKind::Init: return "init";
    default: return "op";
  }
}

}  // namespace

Assertion lock_possible_release(ThreadId t, LocId l, Value u) {
  const std::string name = support::concat("<l", l, ".release_", u, ">_", fmt(t));
  return Assertion{name,
                   [t, l, u](const System&, const Config& cfg) {
                     const auto front = cfg.mem.rank(cfg.mem.view_front(t, l));
                     const auto order = cfg.mem.mo(l);
                     for (std::size_t i = front; i < order.size(); ++i) {
                       const auto& op = cfg.mem.op(order[i]);
                       if (op.kind == OpKind::LockRelease && op.value == u) {
                         return true;
                       }
                     }
                     return false;
                   },
                   view_of(t, l)};
}

Assertion lock_definite(ThreadId t, LocId l, OpKind kind, Value u) {
  const std::string name =
      support::concat("[l", l, ".", kind_name(kind), "_", u, "]_", fmt(t));
  return Assertion{name,
                   [t, l, kind, u](const System&, const Config& cfg) {
                     const OpId last = cfg.mem.last_op(l);
                     if (cfg.mem.view_front(t, l) != last) return false;
                     const auto& op = cfg.mem.op(last);
                     return op.kind == kind && op.value == u;
                   },
                   view_of(t, l)};
}

Assertion lock_cond_obs(ThreadId t, LocId l, Value u, LocId y, Value v) {
  const std::string name = support::concat("<l", l, ".release_", u, ">[loc", y,
                                           "=", v, "]_", fmt(t));
  return Assertion{name,
                   [t, l, u, y, v](const System&, const Config& cfg) {
                     const auto front = cfg.mem.rank(cfg.mem.view_front(t, l));
                     const auto order = cfg.mem.mo(l);
                     for (std::size_t i = front; i < order.size(); ++i) {
                       const auto& op = cfg.mem.op(order[i]);
                       if (op.kind != OpKind::LockRelease || op.value != u) {
                         continue;
                       }
                       if (!dview_is(cfg.mem, op.mview, y, v)) return false;
                     }
                     return true;
                   },
                   view_of(t, l)};
}

Assertion lock_covered(LocId l, OpKind kind, Value u) {
  const std::string name = support::concat("C_l", l, ".", kind_name(kind), "_", u);
  return Assertion{name,
                   [l, kind, u](const System&, const Config& cfg) {
                     const OpId last = cfg.mem.last_op(l);
                     for (const OpId w : cfg.mem.mo(l)) {
                       const auto& op = cfg.mem.op(w);
                       if (op.covered) continue;
                       if (w != last || op.kind != kind || op.value != u) {
                         return false;
                       }
                     }
                     return true;
                   },
                   ViewFootprint{}};
}

Assertion lock_hidden(LocId l, OpKind kind, Value u) {
  const std::string name = support::concat("H_l", l, ".", kind_name(kind), "_", u);
  return Assertion{name,
                   [l, kind, u](const System&, const Config& cfg) {
                     bool exists = false;
                     for (const OpId w : cfg.mem.mo(l)) {
                       const auto& op = cfg.mem.op(w);
                       if (op.kind != kind || op.value != u) continue;
                       exists = true;
                       if (!op.covered) return false;
                     }
                     return exists;
                   },
                   ViewFootprint{}};
}

Assertion lock_hidden_init(LocId l) {
  return lock_hidden(l, OpKind::Init, 0);
}

Assertion lock_held_by(ThreadId t, LocId l) {
  const std::string name = support::concat("held(l", l, ")_", fmt(t));
  return Assertion{name,
                   [t, l](const System&, const Config& cfg) {
                     const auto& op = cfg.mem.op(cfg.mem.last_op(l));
                     return op.kind == OpKind::LockAcquire && op.thread == t;
                   },
                   ViewFootprint{}};
}

// --- stack -------------------------------------------------------------------

namespace {

std::optional<OpId> top_of(const MemState& mem, LocId s) {
  const auto order = mem.mo(s);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto& op = mem.op(*it);
    if (op.kind == OpKind::StackPush && !op.covered) return *it;
  }
  return std::nullopt;
}

}  // namespace

Assertion stack_can_pop(LocId s, Value v) {
  const std::string name = support::concat("<s", s, ".pop_", v, ">");
  return Assertion{name,
                   [s, v](const System&, const Config& cfg) {
                     const auto top = top_of(cfg.mem, s);
                     return top && cfg.mem.op(*top).value == v;
                   },
                   ViewFootprint{}};
}

Assertion stack_pop_empty_only(LocId s) {
  const std::string name = support::concat("[s", s, ".pop_emp]");
  return Assertion{name,
                   [s](const System&, const Config& cfg) {
                     return !top_of(cfg.mem, s).has_value();
                   },
                   ViewFootprint{}};
}

Assertion stack_cond_obs(LocId s, Value v, LocId y, Value n) {
  const std::string name =
      support::concat("<s", s, ".pop_", v, ">[loc", y, "=", n, "]");
  return Assertion{name,
                   [s, v, y, n](const System&, const Config& cfg) {
                     const auto top = top_of(cfg.mem, s);
                     if (!top || cfg.mem.op(*top).value != v) return true;
                     const auto& op = cfg.mem.op(*top);
                     return op.releasing && dview_is(cfg.mem, op.mview, y, n);
                   },
                   ViewFootprint{}};
}

// --- program predicates --------------------------------------------------------

Assertion at_pc(ThreadId t, std::uint32_t pc) {
  const std::string name = support::concat("pc", fmt(t), "=", pc);
  return Assertion{name,
                   [t, pc](const System&, const Config& cfg) {
                     return cfg.pc[t] == pc;
                   },
                   ViewFootprint{}};
}

Assertion pc_in(ThreadId t, std::set<std::uint32_t> pcs) {
  std::ostringstream os;
  os << "pc" << t << " in {";
  for (const auto p : pcs) os << p << " ";
  os << "}";
  return Assertion{os.str(),
                   [t, pcs = std::move(pcs)](const System&, const Config& cfg) {
                     return pcs.count(cfg.pc[t]) > 0;
                   },
                   ViewFootprint{}};
}

Assertion thread_done(ThreadId t) {
  const std::string name = support::concat("done_", fmt(t));
  return Assertion{name,
                   [t](const System& sys, const Config& cfg) {
                     return cfg.thread_done(sys, t);
                   },
                   ViewFootprint{}};
}

Assertion reg_eq(Reg r, Value v) {
  const std::string name = support::concat("r", r.id, "@t", r.thread, "=", v);
  return Assertion{name,
                   [r, v](const System&, const Config& cfg) {
                     return cfg.regs[r.thread][r.id] == v;
                   },
                   ViewFootprint{}};
}

Assertion reg_in(Reg r, std::set<Value> values) {
  std::ostringstream os;
  os << "r" << r.id << "@t" << r.thread << " in {";
  for (const auto v : values) os << v << " ";
  os << "}";
  return Assertion{os.str(),
                   [r, values = std::move(values)](const System&,
                                                   const Config& cfg) {
                     return values.count(cfg.regs[r.thread][r.id]) > 0;
                   },
                   ViewFootprint{}};
}

}  // namespace assertions
