// Tests for the FIFO queue object: abstract semantics (FIFO matching,
// empty dequeue, enqR/deqA synchronisation), the lock-protected ring-buffer
// implementation, and refinement between the two — the third data type
// through the paper's Section 6 machinery.

#include <gtest/gtest.h>

#include "explore/explorer.hpp"
#include "memsem/location.hpp"
#include "objects/queue.hpp"
#include "parser/parser.hpp"
#include "refinement/refinement.hpp"
#include "queues/queue_objects.hpp"

namespace {

using namespace rc11;
using memsem::kQueueEmpty;
namespace obj = rc11::objects;

// --- abstract semantics --------------------------------------------------------

struct QueueFixture : ::testing::Test {
  memsem::LocationTable locs;
  memsem::LocId d, q;

  QueueFixture() {
    d = locs.add_var("d", memsem::Component::Client, 0);
    q = locs.add_object("q", memsem::Component::Library,
                        memsem::LocKind::Queue);
  }

  memsem::MemState make() { return memsem::MemState{locs, 2}; }
};

TEST_F(QueueFixture, FreshQueueIsEmpty) {
  auto m = make();
  EXPECT_TRUE(obj::queue_empty(m, q));
  EXPECT_EQ(obj::queue_size(m, q), 0u);
  EXPECT_EQ(obj::queue_dequeue(m, 0, q, true), kQueueEmpty);
}

TEST_F(QueueFixture, EnqueueDequeueIsFifo) {
  auto m = make();
  obj::queue_enqueue(m, 0, q, 10, true);
  obj::queue_enqueue(m, 0, q, 20, true);
  obj::queue_enqueue(m, 1, q, 30, true);
  EXPECT_EQ(obj::queue_size(m, q), 3u);
  EXPECT_EQ(obj::queue_dequeue(m, 1, q, true), 10);
  EXPECT_EQ(obj::queue_dequeue(m, 1, q, true), 20);
  EXPECT_EQ(obj::queue_dequeue(m, 1, q, true), 30);
  EXPECT_EQ(obj::queue_dequeue(m, 1, q, true), kQueueEmpty);
}

TEST_F(QueueFixture, AcquiringDequeueOfReleasingEnqueueSynchronises) {
  auto m = make();
  const auto wd = m.write(0, d, 5, memsem::MemOrder::Relaxed, m.mo(d)[0]);
  obj::queue_enqueue(m, 0, q, 1, /*releasing=*/true);
  EXPECT_EQ(obj::queue_dequeue(m, 1, q, /*acquiring=*/true), 1);
  EXPECT_EQ(m.view_front(1, d), wd);
}

TEST_F(QueueFixture, RelaxedDequeueDoesNotSynchronise) {
  auto m = make();
  m.write(0, d, 5, memsem::MemOrder::Relaxed, m.mo(d)[0]);
  obj::queue_enqueue(m, 0, q, 1, /*releasing=*/true);
  obj::queue_dequeue(m, 1, q, /*acquiring=*/false);
  EXPECT_EQ(m.view_front(1, d), m.mo(d)[0]);
}

TEST_F(QueueFixture, EmptyDequeueDoesNotMutate) {
  auto m = make();
  std::vector<std::uint64_t> before;
  m.encode(before);
  obj::queue_dequeue(m, 0, q, true);
  std::vector<std::uint64_t> after;
  m.encode(after);
  EXPECT_EQ(before, after);
}

TEST_F(QueueFixture, QueueApiRejectsWrongLocation) {
  auto m = make();
  EXPECT_THROW((void)obj::queue_front(m, d), rc11::support::InternalError);
}

// --- behavioural agreement & refinement ------------------------------------------

TEST(QueueRefinement, PublicationGuarantee) {
  queues::QueueClientArtifacts art;
  queues::LockedRingQueue conc;
  const auto sys =
      queues::instantiate(queues::publication_client(&art), conc);
  const auto result = explore::explore(sys);
  const auto outcomes = explore::final_register_values(sys, result, art.regs);
  for (const auto& o : outcomes) {
    if (o[0] == 1) EXPECT_EQ(o[1], 5) << "dequeued message must publish d";
  }
}

TEST(QueueRefinement, AgreesWithAbstractOnPipeline) {
  queues::QueueClientArtifacts abs_art;
  queues::AbstractQueue abs;
  const auto abs_sys =
      queues::instantiate(queues::pipeline_client(2, &abs_art), abs);
  queues::QueueClientArtifacts conc_art;
  queues::LockedRingQueue conc{2};
  const auto conc_sys =
      queues::instantiate(queues::pipeline_client(2, &conc_art), conc);
  const auto abs_out = explore::final_register_values(
      abs_sys, explore::explore(abs_sys), abs_art.regs);
  const auto conc_out = explore::final_register_values(
      conc_sys, explore::explore(conc_sys), conc_art.regs);
  EXPECT_EQ(abs_out, conc_out);
  // FIFO: a successful first dequeue returns the oldest value 10.
  for (const auto& o : abs_out) {
    EXPECT_NE(o[0], 11) << "queue must not return the newer element first";
  }
}

TEST(QueueRefinement, ForwardSimulationHolds) {
  queues::AbstractQueue abs;
  const auto abs_sys = queues::instantiate(queues::publication_client(), abs);
  queues::LockedRingQueue conc;
  const auto conc_sys =
      queues::instantiate(queues::publication_client(), conc);
  const auto result = refinement::check_forward_simulation(abs_sys, conc_sys);
  EXPECT_TRUE(result.holds) << result.diagnosis;
}

TEST(QueueRefinement, PipelineSimulationHoldsAcrossCapacities) {
  for (const unsigned capacity : {2u, 3u}) {
    queues::AbstractQueue abs;
    const auto abs_sys = queues::instantiate(queues::pipeline_client(2), abs);
    queues::LockedRingQueue conc{capacity};
    const auto conc_sys =
        queues::instantiate(queues::pipeline_client(2), conc);
    const auto result = refinement::check_forward_simulation(abs_sys, conc_sys);
    EXPECT_TRUE(result.holds)
        << "capacity " << capacity << ": " << result.diagnosis;
  }
}

TEST(QueueRefinement, BrokenUnlockFailsSimulation) {
  queues::AbstractQueue abs;
  const auto abs_sys = queues::instantiate(queues::publication_client(), abs);
  queues::LockedRingQueue broken{2, /*releasing_unlock=*/false};
  const auto conc_sys =
      queues::instantiate(queues::publication_client(), broken);
  const auto result = refinement::check_forward_simulation(abs_sys, conc_sys);
  EXPECT_FALSE(result.holds);
  EXPECT_FALSE(result.counterexample.empty());
}

// --- parser round trip ------------------------------------------------------------

TEST(QueueParser, EnqDeqSyntax) {
  auto p = parser::parse_program(R"(
    var d = 0;
    queue library q;
    thread producer {
      d := 5;
      q.enqR(1);
    }
    thread consumer {
      reg r1;
      reg r2;
      do { r1 <-A q.deq(); } until (r1 == 1);
      r2 <- d;
    }
  )");
  const auto result = explore::explore(p.sys);
  const auto outcomes = explore::final_register_values(
      p.sys, result, {p.reg("r1"), p.reg("r2")});
  const std::vector<std::vector<lang::Value>> expected{{1, 5}};
  EXPECT_EQ(outcomes, expected)
      << "enqR/deqA message passing must publish d = 5";
}

TEST(QueueParser, KindMismatchRejected) {
  EXPECT_THROW(parser::parse_program(R"(
    queue library q;
    thread t { reg r; r <- q.pop(); }
  )"),
               rc11::support::Error);
}

}  // namespace
