// rc11-verify — command-line Owicki-Gries outline checker: parse a program
// with an `outline { ... }` block and check the outline over the reachable
// state space (Sections 5.2-5.3 of the paper).
//
// Usage:
//   rc11-verify [options] program.rc11
//
// Options (see tools/cli_common.hpp for the flags shared by every tool):
//   --max-states N       exploration bound (default 1000000)
//   --threads N          exploration workers (0 = hardware, default 1;
//                        traces and witnesses work at every thread count)
//   --workers N          crash-tolerant multi-process checking: fork N
//                        supervised worker processes (see rc11-run for the
//                        full contract).  Verdicts, failed-obligation sets
//                        and stats are byte-identical for every N; composes
//                        with --por, --rf-quotient, budgets and
//                        --checkpoint; rejected with --symmetry, --strategy
//                        sample, --threads > 1 and --resume.  A worker lost
//                        for good exits 3 with a partial report
//   --por                ample-set partial-order reduction (failures found
//                        are real; see og/proof_outline.hpp for the caveat)
//   --symmetry           thread-symmetry quotient + sleep-set pruning;
//                        obligations are checked at every orbit member, so
//                        the verdict and failed-obligation set are exact
//                        (see og/proof_outline.hpp); composes with --por,
//                        --threads, budgets and --checkpoint/--resume
//   --rf-quotient        execution-graph quotient + sleep-set pruning; every
//                        annotation's view footprint is pinned into the
//                        quotient key, so the verdict and failed-obligation
//                        set are exact (see og/proof_outline.hpp); composes
//                        with --por, --threads, budgets and --checkpoint/
//                        --resume; rejected with --symmetry (v1), with
//                        --strategy sample and under the SC model
//   --strategy S         coverage strategy: exhaustive (default), por, or
//                        sample[:N] — N seeded random schedules; failures
//                        found are real (exit 2, replayable witness), but a
//                        clean sampled run is never a proof (exit 3)
//   --seed S             RNG seed for --strategy sample (default 0)
//   --stats              also print peak frontier / visited memory / POR
//                        savings
//   --json FILE          write a machine-readable run summary
//   --no-interference    skip the pairwise Owicki-Gries side condition
//   --all-failures       report every failed obligation, not just the first
//   --trace              include a counterexample run with each failure
//   --witness FILE       write the first failure as a JSON witness (implies
//                        --trace; minimized before emission)
//   --replay FILE        re-execute a JSON witness against the program
//                        instead of checking; exit 0 iff every step replays
//   --deadline-ms MS     wall-clock budget (0 = none)
//   --mem-budget BYTES   visited-set memory budget, optional K/M/G suffix
//   --checkpoint FILE    save a resumable checkpoint when the run stops early
//   --resume FILE        seed the run from a --checkpoint file (--por must
//                        match the checkpointed run)
//
// SIGINT/SIGTERM drain the workers: the tool still prints its partial
// report, writes --json/--checkpoint files, and exits 3.  RC11_FAULT
// (comma-separated insert:N | stall:N:MS | mem:N | crash:N[:C] | hang:N[:C]
// | corrupt:N[:C]) injects faults for robustness testing; the process-level
// kinds fire inside --workers worker processes.
//
// Exit status: 0 valid, 1 usage/parse errors, 2 outline invalid (or --replay
// diverged; failed obligations are definite even in a partial run), 3
// inconclusive (the enumeration stopped early and no failure was found).

#include <chrono>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "cli_common.hpp"
#include "engine/checkpoint.hpp"
#include "og/proof_outline.hpp"
#include "parser/parser.hpp"
#include "witness/witness.hpp"

namespace {

int usage() {
  std::cerr << "usage: rc11-verify " << rc11::cli::kCommonUsage
            << " [--no-interference] [--all-failures] [--trace] "
               "program.rc11\n";
  return rc11::cli::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rc11;

  std::string path;
  cli::CommonOptions common;
  og::OutlineCheckOptions opts;
  for (int i = 1; i < argc; ++i) {
    switch (cli::parse_common_flag(argc, argv, i, common)) {
      case cli::FlagStatus::Consumed:
        continue;
      case cli::FlagStatus::Error:
        return usage();
      case cli::FlagStatus::NotMine:
        break;
    }
    const std::string arg = argv[i];
    if (arg == "--no-interference") {
      opts.check_interference = false;
    } else if (arg == "--all-failures") {
      opts.stop_at_first_failure = false;
    } else if (arg == "--trace") {
      opts.track_traces = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  if (const std::string err = cli::resolve_strategy(common); !err.empty()) {
    std::cerr << "rc11-verify: " << err << "\n";
    return cli::kExitUsage;
  }

  opts.max_states = common.max_states;
  opts.num_threads = common.num_threads;
  opts.por = common.por;
  opts.symmetry = common.symmetry;
  opts.rf_quotient = common.rf_quotient;
  opts.mode = common.mode;
  opts.sample = common.sample;
  opts.max_visited_bytes = common.max_visited_bytes;
  opts.deadline_ms = common.deadline_ms;
  opts.checkpoint_path = common.checkpoint_path;
  opts.workers = common.workers;
  if (!common.witness_path.empty()) {
    opts.track_traces = true;  // witnesses ride on the recorded parents
  }

  try {
    const auto program = parser::parse_file(path);
    if (!common.replay_path.empty()) {
      return cli::run_replay(program.sys, common);
    }
    std::optional<engine::Checkpoint> resume;
    if (!common.resume_path.empty()) {
      resume = engine::load_checkpoint(common.resume_path);
      std::cout << "resuming from " << common.resume_path << " ("
                << resume->states.size() << " state(s), stopped: "
                << engine::to_string(resume->stop) << ")\n";
    }
    opts.resume = resume ? &*resume : nullptr;
    opts.cancel = cli::install_signal_cancel();
    opts.fault = engine::FaultPlan::from_env();
    if (!program.outline) {
      std::cerr << "rc11-verify: " << path << " has no outline { ... } block\n";
      return cli::kExitUsage;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto result =
        og::check_outline(program.sys, *program.outline, opts);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::cout << "states explored:     " << result.stats.states << "\n"
              << "obligations checked: " << result.obligations_checked << "\n";
    if (common.stats) {
      cli::print_stats(result.stats, common.por, common.symmetry,
                       common.rf_quotient, wall_s);
      if (common.workers > 0) cli::print_dist_stats(result.dist);
    }

    // A failed obligation is a definite negative even when the enumeration
    // stopped early (the state it failed at is really reachable), so INVALID
    // wins over INCONCLUSIVE.
    const bool inconclusive = result.truncated();
    if (!common.json_path.empty()) {
      auto summary = witness::Json::object();
      summary.set("tool", witness::Json::string("rc11-verify"));
      summary.set("program", witness::Json::string(path));
      summary.set("strategy",
                  witness::Json::string(engine::to_string(common.mode)));
      if (common.mode == engine::Strategy::Sample) {
        summary.set("seed",
                    witness::Json::integer(
                        static_cast<std::int64_t>(common.sample.seed)));
      }
      summary.set("valid", witness::Json::boolean(result.valid));
      summary.set("inconclusive",
                  witness::Json::boolean(inconclusive && result.valid));
      summary.set("stop",
                  witness::Json::string(engine::to_string(result.stop)));
      summary.set("obligations_checked",
                  witness::Json::integer(static_cast<std::int64_t>(
                      result.obligations_checked)));
      summary.set("failures",
                  witness::Json::integer(
                      static_cast<std::int64_t>(result.failures.size())));
      summary.set("stats", cli::stats_json(result.stats));
      cli::write_json_summary(summary, common.json_path);
    }

    if (result.valid && inconclusive) {
      std::cout << "INCONCLUSIVE: outline check stopped early — "
                << cli::describe_stop(result.stop)
                << "; no failure found in the part examined\n";
      if (!common.checkpoint_path.empty()) {
        std::cout << "checkpoint written to " << common.checkpoint_path
                  << " (continue with --resume)\n";
      }
      return cli::kExitInconclusive;
    }
    if (result.valid) {
      std::cout << "outline VALID"
                << (opts.check_interference ? " (incl. interference freedom)"
                                            : "")
                << "\n";
      if (!common.witness_path.empty()) {
        std::cout << "no failures; " << common.witness_path
                  << " not written\n";
      }
      return cli::kExitOk;
    }
    std::cout << "outline INVALID — " << result.failures.size()
              << " failed obligation(s):\n";
    for (const auto& failure : result.failures) {
      std::cout << "  " << failure.obligation << "\n";
      if (!failure.trace.empty()) {
        std::cout << "  run:\n";
        for (const auto& step : failure.trace) {
          std::cout << "    " << step << "\n";
        }
      }
      std::cout << "  at configuration:\n";
      std::istringstream dump{failure.state_dump};
      std::string line;
      while (std::getline(dump, line)) {
        std::cout << "    " << line << "\n";
      }
    }
    if (!common.witness_path.empty()) {
      bool written = false;
      for (const auto& failure : result.failures) {
        if (!failure.witness) continue;
        cli::write_witness(program.sys, *failure.witness,
                           common.witness_path);
        written = true;
        break;
      }
      if (!written) {
        std::cout << "no witness recorded; " << common.witness_path
                  << " not written\n";
      }
    }
    return cli::kExitFail;
  } catch (const std::exception& e) {
    std::cerr << "rc11-verify: " << e.what() << "\n";
    return cli::kExitUsage;
  }
}
