file(REMOVE_RECURSE
  "CMakeFiles/bench_queue_refinement.dir/bench_queue_refinement.cpp.o"
  "CMakeFiles/bench_queue_refinement.dir/bench_queue_refinement.cpp.o.d"
  "bench_queue_refinement"
  "bench_queue_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
