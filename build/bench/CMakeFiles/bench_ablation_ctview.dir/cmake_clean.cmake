file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ctview.dir/bench_ablation_ctview.cpp.o"
  "CMakeFiles/bench_ablation_ctview.dir/bench_ablation_ctview.cpp.o.d"
  "bench_ablation_ctview"
  "bench_ablation_ctview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ctview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
