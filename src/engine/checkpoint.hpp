// rc11lib/engine/checkpoint.hpp
//
// Checkpoint/resume for the reachability engine: when a run stops early —
// budget exhausted, SIGINT, injected fault — the trace sink already holds
// everything needed to continue later: every interned state's canonical
// encoding, its parent link (thread + label of the step that first reached
// it), and whether the driver enqueued it for expansion.  make_checkpoint
// serialises that to a versioned JSON document; ReachOptions::resume seeds a
// fresh run from it.
//
// Resume semantics (the "re-expansion" design): the resumed run seeds its
// visited set with *all* checkpointed states and its frontier with all
// *enqueued* ones, then runs normally.  Every enqueued state is therefore
// expanded (and handed to the visitor) exactly once across the resumed run —
// including states the interrupted run had already expanded.  That makes
// resume checker-agnostic and verdict-exact: the resumed run's visitor
// observes exactly the state set of an uninterrupted run, so verdicts,
// states, transitions, finals and blocked counts all match an uninterrupted
// run bit for bit.  The price is re-expanding the prefix the first run paid
// for; what is *not* lost is the deduplication work (the visited set) and
// the trace forest.  Stats that describe the *search* rather than the state
// space — peak_frontier, por_chained, visited_bytes — may legitimately
// differ from an uninterrupted run (e.g. chain-internal states interned
// before the stop are not re-collapsed).
//
// Configurations cannot be decoded from their canonical encodings (encoding
// is deliberately one-way — it quotients timestamps), so restore_states
// reconstructs each Config by *re-executing* the recorded step from its
// parent's Config and matching the stored encoding.  A checkpoint is
// therefore self-validating: loaded against the wrong program, semantics
// options or POR setting, reconstruction fails with a precise error instead
// of silently exploring garbage.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/budget.hpp"
#include "engine/reach.hpp"
#include "engine/sharded_visited.hpp"
#include "engine/transition_system.hpp"

namespace rc11::engine {

/// Checkpoint schema version written to and required from JSON files
/// (versioned like the witness schema; see docs/FORMAT.md).
inline constexpr std::int64_t kCheckpointFormatVersion = 1;

/// A serialisable snapshot of an interrupted reachability run.
struct Checkpoint {
  /// One interned state.  States are ordered parents-strictly-before-
  /// children, so a single forward pass can rebuild the forest.
  struct State {
    std::int64_t parent = -1;     ///< index into states; -1 for the root
    memsem::ThreadId thread = 0;  ///< acting thread of the reaching step
    std::string label;            ///< step label ("init" for the root)
    bool enqueued = true;         ///< false for POR chain-internal states
    std::vector<std::uint64_t> encoding;  ///< canonical encoding words
  };

  std::int64_t version = kCheckpointFormatVersion;
  bool por = false;  ///< POR changes the enqueued set; resume must match
  /// Symmetry quotient changes which orbit representatives were expanded;
  /// resume must match (rejected loudly otherwise, like `por`).
  bool symmetry = false;
  /// Execution-graph quotient changes which class representatives were
  /// expanded; resume must match (rejected loudly otherwise, like `por`).
  /// Absent from pre-PR-9 checkpoints and defaults to off.
  bool rf_quotient = false;
  StopReason stop = StopReason::Complete;  ///< why the run stopped
  ExploreStats stats;                      ///< partial stats at the stop
  std::vector<State> states;
};

/// Builds a checkpoint from a run's trace sink (call after workers joined).
/// The sink must have been used exclusively via insert_traced and contain
/// exactly one root.
[[nodiscard]] Checkpoint make_checkpoint(const ShardedVisitedSet& sink,
                                         const ExploreStats& stats,
                                         StopReason stop, bool por,
                                         bool symmetry = false,
                                         bool rf_quotient = false);

/// Serialises to / parses from the versioned JSON schema (docs/FORMAT.md
/// §Checkpoint files).  from_json throws support::Error on malformed input,
/// schema violations or an unsupported version.
[[nodiscard]] std::string to_json(const Checkpoint& ckpt);
[[nodiscard]] Checkpoint from_json(std::string_view text);

/// File convenience wrappers (throw support::Error on I/O failure).
void save_checkpoint(const Checkpoint& ckpt, const std::string& path);
[[nodiscard]] Checkpoint load_checkpoint(const std::string& path);

/// Reconstructs the Config of every checkpointed state, aligned with
/// Checkpoint::states, by re-executing each recorded step from its parent's
/// Config and matching the stored canonical encoding.  Throws
/// support::Error when the checkpoint does not fit `ts` (wrong program,
/// semantics options, or a tampered file).
[[nodiscard]] std::vector<Config> restore_states(const TransitionSystem& ts,
                                                 const Checkpoint& ckpt);

}  // namespace rc11::engine
