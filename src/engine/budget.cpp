#include "engine/budget.hpp"

#include <cstdlib>
#include <string>

#include "support/diagnostics.hpp"

namespace rc11::engine {

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::Complete:
      return "complete";
    case StopReason::StateCap:
      return "state-cap";
    case StopReason::MemCap:
      return "mem-cap";
    case StopReason::Deadline:
      return "deadline";
    case StopReason::Interrupted:
      return "interrupted";
    case StopReason::InjectedFault:
      return "injected-fault";
    case StopReason::EpisodeCap:
      return "episode-cap";
    case StopReason::WorkerLost:
      return "worker-lost";
  }
  return "unknown";
}

StopReason stop_reason_from_string(std::string_view name) {
  for (StopReason r :
       {StopReason::Complete, StopReason::StateCap, StopReason::MemCap,
        StopReason::Deadline, StopReason::Interrupted,
        StopReason::InjectedFault, StopReason::EpisodeCap,
        StopReason::WorkerLost}) {
    if (name == to_string(r)) return r;
  }
  support::fail("unknown stop reason '", std::string(name), "'");
}

namespace {

// Parses a strictly positive decimal count; the whole of `text` must be
// digits.
std::uint64_t parse_count(std::string_view text, std::string_view what,
                          std::string_view spec) {
  support::require(!text.empty(),
                   "RC11_FAULT '", std::string(spec), "': missing ", what);
  std::uint64_t value = 0;
  for (char c : text) {
    support::require(c >= '0' && c <= '9', "RC11_FAULT '", std::string(spec),
                     "': ", what, " must be a decimal number, got '",
                     std::string(text), "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  support::require(value > 0, "RC11_FAULT '", std::string(spec), "': ", what,
                   " must be >= 1 (claim indices are 1-based)");
  return value;
}

}  // namespace

namespace {

// Parses one comma-free spec into `plan`, rejecting duplicate kinds and a
// second state-level spec.
void parse_one(FaultPlan& plan, std::string_view spec) {
  using Kind = FaultPlan::Kind;
  const std::size_t colon = spec.find(':');
  support::require(colon != std::string_view::npos,
                   "RC11_FAULT '", std::string(spec),
                   "': expected insert:N, stall:N:MS, mem:N, crash:N[:K], "
                   "hang:N[:K] or corrupt:N[:K]");
  const std::string_view kind = spec.substr(0, colon);
  std::string_view rest = spec.substr(colon + 1);

  const auto take_state_slot = [&](Kind k) {
    support::require(plan.kind == Kind::None,
                     "RC11_FAULT '", std::string(spec),
                     "': only one state-level fault (insert/stall/mem) may "
                     "be armed per plan");
    plan.kind = k;
  };
  if (kind == "insert") {
    take_state_slot(Kind::FailInsert);
    plan.at_state = parse_count(rest, "state index", spec);
  } else if (kind == "mem") {
    take_state_slot(Kind::TripMem);
    plan.at_state = parse_count(rest, "state index", spec);
  } else if (kind == "stall") {
    const std::size_t colon2 = rest.find(':');
    support::require(colon2 != std::string_view::npos,
                     "RC11_FAULT '", std::string(spec),
                     "': stall needs both a state index and a duration "
                     "(stall:N:MS)");
    take_state_slot(Kind::Stall);
    plan.at_state = parse_count(rest.substr(0, colon2), "state index", spec);
    plan.stall_ms =
        parse_count(rest.substr(colon2 + 1), "stall duration (ms)", spec);
  } else if (kind == "crash" || kind == "hang" || kind == "corrupt") {
    FaultPlan::ProcessFault pf;
    pf.kind = kind == "crash"  ? Kind::Crash
              : kind == "hang" ? Kind::Hang
                               : Kind::Corrupt;
    for (const auto& existing : plan.process) {
      support::require(existing.kind != pf.kind,
                       "RC11_FAULT '", std::string(spec), "': duplicate '",
                       std::string(kind), "' fault");
    }
    const std::size_t colon2 = rest.find(':');
    if (colon2 == std::string_view::npos) {
      pf.at_batch = parse_count(rest, "batch index", spec);
    } else {
      pf.at_batch = parse_count(rest.substr(0, colon2), "batch index", spec);
      pf.count = parse_count(rest.substr(colon2 + 1), "repeat count", spec);
    }
    plan.process.push_back(pf);
  } else {
    support::fail("RC11_FAULT '", std::string(spec), "': unknown fault kind '",
                  std::string(kind),
                  "' (expected insert, stall, mem, crash, hang or corrupt)");
  }
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  bool any = false;
  while (true) {
    const std::size_t comma = spec.find(',', start);
    const std::string_view part =
        spec.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    support::require(!part.empty(), "RC11_FAULT '", std::string(spec),
                     "': empty fault spec in comma-separated list");
    parse_one(plan, part);
    any = true;
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  support::require(any, "RC11_FAULT '", std::string(spec), "': empty spec");
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("RC11_FAULT");
  if (spec == nullptr || *spec == '\0') return {};
  return parse(spec);
}

}  // namespace rc11::engine
