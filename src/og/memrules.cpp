#include "og/memrules.hpp"

#include "assertions/assertions.hpp"
#include "lang/system.hpp"

namespace rc11::og {

namespace asrt = rc11::assertions;
using lang::c;
using lang::Config;
using lang::IKind;
using lang::Instr;
using lang::LocId;
using lang::System;
using lang::ThreadId;

namespace {

struct Harness {
  System sys;
  LocId x = 0;
  LocId y = 0;
  lang::Reg ra, rb, rc, rd;
};

/// Message passing (t0 publishes y = 5 via a releasing x := 1, t1 consumes)
/// plus an RMW thread competing on both variables — rich enough to produce
/// non-vacuous instances for every rule in the catalogue.
Harness make_harness() {
  Harness h;
  h.x = h.sys.client_var("x", 0);
  h.y = h.sys.client_var("y", 0);
  auto t0 = h.sys.thread();
  t0.store(h.y, c(5), "y := 5");
  t0.store_rel(h.x, c(1), "x :=R 1");
  t0.store(h.x, c(2), "x := 2");
  auto t1 = h.sys.thread();
  h.ra = t1.reg("ra");
  h.rb = t1.reg("rb");
  t1.load_acq(h.ra, h.x, "ra <-A x");
  t1.load(h.rb, h.y, "rb <- y");
  auto t2 = h.sys.thread();
  h.rc = t2.reg("rc");
  h.rd = t2.reg("rd");
  t2.cas(h.rc, h.x, c(0), c(7), "rc <- CAS(x, 0, 7)");
  t2.fai(h.rd, h.y, "rd <- FAI(y)");
  return h;
}

bool modifies(const Instr& in, LocId x) {
  return (in.kind == IKind::Store || in.kind == IKind::Cas ||
          in.kind == IKind::Fai) &&
         in.loc == x;
}

}  // namespace

std::vector<MemoryRuleResult> check_memory_rules() {
  Harness h = make_harness();
  const auto x = h.x;
  const auto y = h.y;
  std::vector<MemoryRuleResult> results;

  // M1: {[x = 0]_0} x-store by t0 {[x = new]_0}.
  {
    const auto r = check_triple(
        h.sys, asrt::definite_obs(0, x, 0),
        [x](ThreadId t, const Instr& in) {
          return t == 0 && in.kind == IKind::Store && in.loc == x;
        },
        [x](const System&, const Config&, const Config& after) {
          const auto last = after.mem.last_op(x);
          return after.mem.view_front(0, x) == last;
        });
    results.push_back({"M1", "{[x = u]_t} x := v (t) {[x = v]_t}", r.valid,
                       r.instances_checked});
  }
  // M2: {[x = 0]_1} ra <- x (t1) {ra = 0}.
  {
    const auto r = check_triple(
        h.sys, asrt::definite_obs(1, x, 0),
        [x](ThreadId t, const Instr& in) {
          return t == 1 && in.kind == IKind::Load && in.loc == x;
        },
        [&](const System&, const Config&, const Config& after) {
          return after.regs[1][h.ra.id] == 0;
        });
    results.push_back({"M2", "{[x = u]_t} r <- x (t) {r = u}", r.valid,
                       r.instances_checked});
  }
  // M3: {<x = 1>[y = 5]_1} ra <-A x (t1) {ra = 1 ==> [y = 5]_1}.
  {
    const auto r = check_triple(
        h.sys, asrt::cond_obs(1, x, 1, y, 5),
        [x](ThreadId t, const Instr& in) {
          return t == 1 && in.kind == IKind::Load && in.loc == x &&
                 in.order == memsem::MemOrder::Acquire;
        },
        [&](const System& s, const Config&, const Config& after) {
          return after.regs[1][h.ra.id] != 1 ||
                 asrt::definite_obs(1, y, 5).eval(s, after);
        });
    results.push_back(
        {"M3", "{<x = u>[y = v]_t} r <-A x (t) {r = u ==> [y = v]_t}",
         r.valid, r.instances_checked});
  }
  // M4: {[y = 5]_0 && x-pristine(1)} x :=R 1 (t0) {<x = 1>[y = 5]_1}.
  {
    const auto pristine = asrt::pred(
        "no-write-of-1-to-x", [x](const System&, const Config& cfg) {
          for (const auto w : cfg.mem.mo(x)) {
            if (cfg.mem.op(w).value == 1) return false;
          }
          return true;
        });
    const auto r = check_triple(
        h.sys, asrt::definite_obs(0, y, 5) && pristine,
        [x](ThreadId t, const Instr& in) {
          return t == 0 && in.kind == IKind::Store && in.loc == x &&
                 in.order == memsem::MemOrder::Release;
        },
        [x, y](const System& s, const Config&, const Config& after) {
          return asrt::cond_obs(1, x, 1, y, 5).eval(s, after);
        });
    results.push_back(
        {"M4", "{[y = v]_t && x-pristine} x :=R u (t) {<x = u>[y = v]_t'}",
         r.valid, r.instances_checked});
  }
  // M5: {[y = 5]_0} any step by t' != 0 that cannot modify y {[y = 5]_0}.
  {
    const auto def = asrt::definite_obs(0, y, 5);
    const auto r = check_triple(
        h.sys, def,
        [y](ThreadId t, const Instr& in) {
          return t != 0 && !modifies(in, y);
        },
        [def](const System& s, const Config&, const Config& after) {
          return def.eval(s, after);
        });
    results.push_back(
        {"M5", "{[x = u]_t} non-modifying step by t' {[x = u]_t}", r.valid,
         r.instances_checked});
  }
  // M6: {<x = 1>_1} any step by t' != 1 {<x = 1>_1}.
  {
    const auto pos = asrt::possible_obs(1, x, 1);
    const auto r = check_triple(
        h.sys, pos,
        [](ThreadId t, const Instr&) { return t != 1; },
        [pos](const System& s, const Config&, const Config& after) {
          return pos.eval(s, after);
        });
    results.push_back({"M6", "{<x = u>_t} any step by t' {<x = u>_t}",
                       r.valid, r.instances_checked});
  }
  // M7: {C_x^0} rc <- CAS(x, 0, 7) (t2), success {[x = 7]_2}.
  {
    const auto r = check_triple(
        h.sys, asrt::covered_var(x, 0),
        [x](ThreadId t, const Instr& in) {
          return t == 2 && in.kind == IKind::Cas && in.loc == x;
        },
        [&](const System& s, const Config&, const Config& after) {
          return after.regs[2][h.rc.id] != 1 ||
                 asrt::definite_obs(2, x, 7).eval(s, after);
        });
    results.push_back(
        {"M7", "{C_x^u} r <- CAS(x, u, v) success (t) {[x = v]_t}", r.valid,
         r.instances_checked});
  }
  // M8: {true} rd <- FAI(y) (t2) {<y = rd + 1>_2}.
  {
    const auto r = check_triple(
        h.sys, asrt::Assertion::always(),
        [y](ThreadId t, const Instr& in) {
          return t == 2 && in.kind == IKind::Fai && in.loc == y;
        },
        [&](const System& s, const Config&, const Config& after) {
          const auto rd = after.regs[2][h.rd.id];
          return asrt::possible_obs(2, y, rd + 1).eval(s, after);
        });
    results.push_back({"M8", "{true} r <- FAI(x) (t) {<x = r + 1>_t}",
                       r.valid, r.instances_checked});
  }
  // M9: {H_x^0} any step that cannot modify x {H_x^0}.
  {
    const auto hidden = asrt::hidden_var(x, 0);
    const auto r = check_triple(
        h.sys, hidden,
        [x](ThreadId, const Instr& in) { return !modifies(in, x); },
        [hidden](const System& s, const Config&, const Config& after) {
          return hidden.eval(s, after);
        });
    results.push_back({"M9", "{H_x^u} non-modifying step {H_x^u}", r.valid,
                       r.instances_checked});
  }
  return results;
}

}  // namespace rc11::og
