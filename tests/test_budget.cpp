// Resource governance and checkpoint/resume: budgets must stop runs with
// the honest StopReason at every thread count and POR setting, partial
// results must stay valid, injected faults must degrade gracefully (no
// deadlock, no lie about why the run ended), and a checkpointed run resumed
// later must reach verdicts identical to an uninterrupted run.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "engine/budget.hpp"
#include "engine/checkpoint.hpp"
#include "engine/transition_system.hpp"
#include "explore/explorer.hpp"
#include "og/proof_outline.hpp"
#include "parser/parser.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace rc11;
using engine::StopReason;
using explore::ExploreOptions;

std::string prog(const std::string& name) {
  return std::string(RC11_SRC_DIR) + "/tools/programs/" + name;
}

/// A temp-file path that cleans up after itself.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

std::vector<lang::Reg> all_regs(const lang::System& sys) {
  std::vector<lang::Reg> regs;
  for (lang::ThreadId t = 0; t < sys.num_threads(); ++t) {
    for (lang::RegId r = 0; r < sys.num_regs(t); ++r) {
      regs.push_back(lang::Reg{t, r});
    }
  }
  return regs;
}

// --- StopReason / FaultPlan parsing -----------------------------------------

TEST(Budget, StopReasonNamesRoundTrip) {
  for (const auto reason :
       {StopReason::Complete, StopReason::StateCap, StopReason::MemCap,
        StopReason::Deadline, StopReason::Interrupted,
        StopReason::InjectedFault, StopReason::EpisodeCap,
        StopReason::WorkerLost}) {
    EXPECT_EQ(engine::stop_reason_from_string(engine::to_string(reason)),
              reason);
  }
  EXPECT_THROW((void)engine::stop_reason_from_string("out-of-quota"),
               support::Error);
  EXPECT_THROW((void)engine::stop_reason_from_string(""), support::Error);
}

TEST(Budget, FaultPlanParses) {
  const auto insert = engine::FaultPlan::parse("insert:7");
  EXPECT_EQ(insert.kind, engine::FaultPlan::Kind::FailInsert);
  EXPECT_EQ(insert.at_state, 7u);

  const auto stall = engine::FaultPlan::parse("stall:12:250");
  EXPECT_EQ(stall.kind, engine::FaultPlan::Kind::Stall);
  EXPECT_EQ(stall.at_state, 12u);
  EXPECT_EQ(stall.stall_ms, 250u);

  const auto mem = engine::FaultPlan::parse("mem:3");
  EXPECT_EQ(mem.kind, engine::FaultPlan::Kind::TripMem);
  EXPECT_EQ(mem.at_state, 3u);
}

TEST(Budget, FaultPlanParsesProcessFaults) {
  const auto crash = engine::FaultPlan::parse("crash:4");
  EXPECT_EQ(crash.kind, engine::FaultPlan::Kind::None);
  ASSERT_EQ(crash.process.size(), 1u);
  EXPECT_EQ(crash.process[0].kind, engine::FaultPlan::Kind::Crash);
  EXPECT_EQ(crash.process[0].at_batch, 4u);
  EXPECT_EQ(crash.process[0].count, 1u);
  EXPECT_NE(crash.process_fault_at(4), nullptr);
  EXPECT_EQ(crash.process_fault_at(3), nullptr);
  EXPECT_EQ(crash.process_fault_at(5), nullptr);

  const auto repeated = engine::FaultPlan::parse("corrupt:2:100");
  ASSERT_EQ(repeated.process.size(), 1u);
  EXPECT_EQ(repeated.process[0].kind, engine::FaultPlan::Kind::Corrupt);
  EXPECT_EQ(repeated.process[0].at_batch, 2u);
  EXPECT_EQ(repeated.process[0].count, 100u);
  EXPECT_NE(repeated.process_fault_at(2), nullptr);
  EXPECT_NE(repeated.process_fault_at(101), nullptr);
  EXPECT_EQ(repeated.process_fault_at(102), nullptr);

  const auto hang = engine::FaultPlan::parse("hang:7");
  ASSERT_EQ(hang.process.size(), 1u);
  EXPECT_EQ(hang.process[0].kind, engine::FaultPlan::Kind::Hang);
}

TEST(Budget, FaultPlanParsesCommaSeparatedLists) {
  const auto plan = engine::FaultPlan::parse("crash:100,stall:200:50");
  EXPECT_EQ(plan.kind, engine::FaultPlan::Kind::Stall);
  EXPECT_EQ(plan.at_state, 200u);
  EXPECT_EQ(plan.stall_ms, 50u);
  ASSERT_EQ(plan.process.size(), 1u);
  EXPECT_EQ(plan.process[0].kind, engine::FaultPlan::Kind::Crash);
  EXPECT_EQ(plan.process[0].at_batch, 100u);

  const auto trio = engine::FaultPlan::parse("crash:1,hang:2,corrupt:3:4");
  EXPECT_EQ(trio.kind, engine::FaultPlan::Kind::None);
  ASSERT_EQ(trio.process.size(), 3u);
  EXPECT_TRUE(trio.armed());
}

TEST(Budget, FaultPlanRejectsMalformedSpecs) {
  for (const char* bad :
       {"", "insert", "insert:", "insert:0", "insert:x", "stall:5", "stall:5:",
        "stall:0:10", "mem:-1", "oom:5", "insert:5:9", "crash", "crash:",
        "crash:0", "crash:x", "crash:5:0", "crash:5:x", "hang:5:2:9",
        "corrupt:", ",", "crash:5,", ",crash:5", "crash:5,,hang:6",
        "crash:5 ,hang:6"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW((void)engine::FaultPlan::parse(bad), support::Error);
  }
}

TEST(Budget, FaultPlanRejectsDuplicateSpecs) {
  for (const char* bad :
       {"crash:5,crash:9", "hang:1,hang:1", "corrupt:2,corrupt:3:4",
        "insert:5,mem:9", "insert:5,insert:6", "stall:5:10,mem:2",
        "crash:1,insert:5,stall:2:10"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW((void)engine::FaultPlan::parse(bad), support::Error);
  }
}

// --- Truncation exactness under contention ----------------------------------

// Every (threads, por) combination must stop for the *same* reason and leave
// partial stats that are internally consistent: the state cap admits at most
// max_states expansions, and every expanded state was really counted.
TEST(Budget, StateCapIdenticalAcrossThreadsAndPor) {
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  for (const bool por : {false, true}) {
    for (const unsigned workers : {1u, 4u}) {
      SCOPED_TRACE("por=" + std::to_string(por) +
                   " workers=" + std::to_string(workers));
      ExploreOptions opts;
      opts.max_states = 20;  // below the 47 (full) / 39 (POR) reachable
      opts.num_threads = workers;
      opts.por = por;
      const auto result = explore::explore(program.sys, opts);
      EXPECT_EQ(result.stop, StopReason::StateCap);
      EXPECT_TRUE(result.truncated);
      EXPECT_GE(result.stats.states, 1u);
      EXPECT_LE(result.stats.states, opts.max_states);
      EXPECT_GE(result.stats.transitions, result.stats.states - 1);
      EXPECT_GT(result.stats.peak_frontier, 0u);
      EXPECT_GT(result.stats.visited_bytes, 0u);
    }
  }
}

TEST(Budget, MemCapIdenticalAcrossThreadsAndPor) {
  // lock_client_seqlock has enough states that the every-32-claims probe
  // always fires before the frontier drains.
  const auto program = parser::parse_file(prog("lock_client_seqlock.rc11"));
  for (const bool por : {false, true}) {
    for (const unsigned workers : {1u, 4u}) {
      SCOPED_TRACE("por=" + std::to_string(por) +
                   " workers=" + std::to_string(workers));
      ExploreOptions opts;
      opts.max_visited_bytes = 64;  // absurdly small: first probe trips
      opts.num_threads = workers;
      opts.por = por;
      const auto result = explore::explore(program.sys, opts);
      EXPECT_EQ(result.stop, StopReason::MemCap);
      EXPECT_TRUE(result.truncated);
      EXPECT_GE(result.stats.states, 1u);
      EXPECT_GT(result.stats.visited_bytes, opts.max_visited_bytes);
    }
  }
}

TEST(Budget, PreCancelledTokenStopsImmediately) {
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  engine::CancelToken token;
  token.cancel();
  for (const unsigned workers : {1u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExploreOptions opts;
    opts.num_threads = workers;
    opts.cancel = &token;
    const auto result = explore::explore(program.sys, opts);
    EXPECT_EQ(result.stop, StopReason::Interrupted);
    EXPECT_TRUE(result.truncated);
    EXPECT_LT(result.stats.states, 47u);
  }
}

TEST(Budget, CancelMidRunDrainsWorkers) {
  const auto program = parser::parse_file(prog("lock_client_seqlock.rc11"));
  engine::CancelToken token;
  ExploreOptions opts;
  opts.num_threads = 4;
  opts.cancel = &token;
  // Hold one worker at the 10th claim so the cancel lands mid-run; peers
  // must keep draining and the join must not deadlock.
  opts.fault = engine::FaultPlan::parse("stall:10:100");
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.cancel();
  });
  const auto result = explore::explore(program.sys, opts);
  canceller.join();
  EXPECT_TRUE(result.truncated);
  // The stall makes Interrupted the overwhelmingly likely reason, but a
  // racing decision is fine as long as the run stopped honestly.
  EXPECT_NE(result.stop, StopReason::Complete);
}

// --- Fault injection --------------------------------------------------------

TEST(Budget, InjectedInsertFaultReportsItself) {
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  for (const unsigned workers : {1u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExploreOptions opts;
    opts.num_threads = workers;
    opts.fault = engine::FaultPlan::parse("insert:10");
    const auto result = explore::explore(program.sys, opts);
    EXPECT_EQ(result.stop, StopReason::InjectedFault);
    EXPECT_LT(result.stats.states, 47u);
  }
}

TEST(Budget, InjectedMemFaultReportsMemCap) {
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  ExploreOptions opts;
  opts.fault = engine::FaultPlan::parse("mem:5");
  const auto result = explore::explore(program.sys, opts);
  EXPECT_EQ(result.stop, StopReason::MemCap);
}

TEST(Budget, StallFaultAloneStillCompletesExactly) {
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  const auto regs = all_regs(program.sys);
  const auto baseline = explore::explore(program.sys, ExploreOptions{});
  ASSERT_EQ(baseline.stop, StopReason::Complete);

  ExploreOptions opts;
  opts.num_threads = 4;
  opts.fault = engine::FaultPlan::parse("stall:10:50");
  const auto result = explore::explore(program.sys, opts);
  EXPECT_EQ(result.stop, StopReason::Complete);
  EXPECT_EQ(result.stats.states, baseline.stats.states);
  EXPECT_EQ(explore::final_register_values(program.sys, result, regs),
            explore::final_register_values(program.sys, baseline, regs));
}

TEST(Budget, StallPlusDeadlineTripsDeadlineDeterministically) {
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  for (const unsigned workers : {1u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExploreOptions opts;
    opts.num_threads = workers;
    opts.deadline_ms = 5;
    // The stalled claim probes the clock unconditionally after sleeping
    // past the deadline, so the reason is deterministic.
    opts.fault = engine::FaultPlan::parse("stall:10:100");
    const auto result = explore::explore(program.sys, opts);
    EXPECT_EQ(result.stop, StopReason::Deadline);
    EXPECT_TRUE(result.truncated);
  }
}

// Satellite regression for the deadline-probe granularity fix: a stall far
// longer than the deadline must not delay the Deadline decision to the end
// of the stall — the sliced sleep probes the clock between slices.
TEST(Budget, LongStallCannotOvershootDeadline) {
  const auto program = parser::parse_file(prog("lock_client_seqlock.rc11"));
  ExploreOptions opts;
  opts.deadline_ms = 40;
  opts.fault = engine::FaultPlan::parse("stall:10:20000");
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = explore::explore(program.sys, opts);
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  EXPECT_EQ(result.stop, StopReason::Deadline);
  EXPECT_TRUE(result.truncated);
  // Well under the 20s stall; generous slack for loaded CI machines.
  EXPECT_LT(elapsed_ms, 5000);
}

// Deadline escalation at claim granularity: with slow claims, the
// every-32-claims cadence alone would overshoot a 30ms deadline by up to
// 31 claim times.  The first claim probes, sees the deadline inside the
// urgent window, and every following claim probes — so the trip happens
// before the counter-based probe at claim 32 ever fires.
TEST(Budget, DeadlineProbeEscalatesToEveryClaim) {
  const engine::Budget budget{.max_states = 1'000'000,
                              .max_visited_bytes = 0,
                              .deadline_ms = 30};
  engine::BudgetEnforcer enforcer(budget, nullptr, engine::FaultPlan{},
                                  [] { return std::uint64_t{0}; });
  std::uint64_t claims = 0;
  StopReason stop = StopReason::Complete;
  while (stop == StopReason::Complete && claims < 2 * engine::kBudgetCheckInterval) {
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
    stop = enforcer.claim();
    claims += 1;
  }
  EXPECT_EQ(stop, StopReason::Deadline);
  // ~8 claims of 4ms pass the 30ms deadline; without per-claim escalation
  // the first probe would only happen at claim 32 (~128ms late).
  EXPECT_LT(claims, engine::kBudgetCheckInterval);
}

// --- Checkpoint / resume ----------------------------------------------------

/// Runs `name` truncated at half its reachable-state count, checkpoints,
/// resumes, and requires the resumed run's verdicts to equal an
/// uninterrupted run bit for bit.
void roundtrip_case(const std::string& name, unsigned workers, bool por) {
  SCOPED_TRACE(name + " workers=" + std::to_string(workers) +
               " por=" + std::to_string(por));
  const auto program = parser::parse_file(prog(name));
  const auto regs = all_regs(program.sys);

  ExploreOptions full_opts;
  full_opts.num_threads = workers;
  full_opts.por = por;
  const auto full = explore::explore(program.sys, full_opts);
  ASSERT_EQ(full.stop, StopReason::Complete);
  ASSERT_GE(full.stats.states, 4u) << "program too small to interrupt";

  TempFile ck("budget_roundtrip_" + name + std::to_string(workers) +
              (por ? "p" : "") + ".json");
  ExploreOptions trunc_opts = full_opts;
  trunc_opts.max_states = full.stats.states / 2;
  trunc_opts.checkpoint_path = ck.path;
  const auto truncated = explore::explore(program.sys, trunc_opts);
  ASSERT_EQ(truncated.stop, StopReason::StateCap);

  const auto ckpt = engine::load_checkpoint(ck.path);
  EXPECT_EQ(ckpt.stop, StopReason::StateCap);
  EXPECT_EQ(ckpt.por, por);
  EXPECT_GE(ckpt.states.size(), truncated.stats.states);

  ExploreOptions resume_opts = full_opts;
  resume_opts.resume = &ckpt;
  const auto resumed = explore::explore(program.sys, resume_opts);
  EXPECT_EQ(resumed.stop, StopReason::Complete);
  EXPECT_EQ(resumed.stats.states, full.stats.states);
  EXPECT_EQ(resumed.stats.transitions, full.stats.transitions);
  EXPECT_EQ(resumed.stats.finals, full.stats.finals);
  EXPECT_EQ(resumed.stats.blocked, full.stats.blocked);
  EXPECT_EQ(explore::final_register_values(program.sys, resumed, regs),
            explore::final_register_values(program.sys, full, regs));
}

TEST(Checkpoint, ResumeMatchesUninterruptedRun) {
  // Three corpus families — a lock implementation, a data structure client
  // and a seqlock client — each resumed with 4 workers and POR on (plus a
  // sequential unreduced sanity combination).
  for (const auto* name :
       {"ticket_lock.rc11", "mp_stack.rc11", "lock_client_seqlock.rc11"}) {
    roundtrip_case(name, 4, true);
    roundtrip_case(name, 1, false);
  }
}

TEST(Checkpoint, ResumeCanChangeThreadCountAndStrategy) {
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  const auto full = explore::explore(program.sys, ExploreOptions{});

  TempFile ck("budget_threads.json");
  ExploreOptions trunc_opts;
  trunc_opts.max_states = 20;
  trunc_opts.num_threads = 1;
  trunc_opts.checkpoint_path = ck.path;
  (void)explore::explore(program.sys, trunc_opts);

  const auto ckpt = engine::load_checkpoint(ck.path);
  ExploreOptions resume_opts;
  resume_opts.num_threads = 4;  // checkpointed sequentially, resumed parallel
  resume_opts.strategy = explore::SearchStrategy::Bfs;
  resume_opts.resume = &ckpt;
  const auto resumed = explore::explore(program.sys, resume_opts);
  EXPECT_EQ(resumed.stop, StopReason::Complete);
  EXPECT_EQ(resumed.stats.states, full.stats.states);
  EXPECT_EQ(resumed.stats.finals, full.stats.finals);
}

TEST(Checkpoint, PorMismatchIsRejected) {
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  TempFile ck("budget_pormismatch.json");
  ExploreOptions trunc_opts;
  trunc_opts.max_states = 15;
  trunc_opts.por = true;
  trunc_opts.checkpoint_path = ck.path;
  (void)explore::explore(program.sys, trunc_opts);

  const auto ckpt = engine::load_checkpoint(ck.path);
  ExploreOptions resume_opts;
  resume_opts.por = false;  // mismatch
  resume_opts.resume = &ckpt;
  EXPECT_THROW((void)explore::explore(program.sys, resume_opts),
               support::Error);
}

TEST(Checkpoint, JsonRoundTripPreservesEverything) {
  const auto program = parser::parse_file(prog("sb.rc11"));
  TempFile ck("budget_json.json");
  ExploreOptions opts;
  opts.max_states = 8;
  opts.checkpoint_path = ck.path;
  (void)explore::explore(program.sys, opts);

  const auto a = engine::load_checkpoint(ck.path);
  const auto b = engine::from_json(engine::to_json(a));
  EXPECT_EQ(b.version, a.version);
  EXPECT_EQ(b.por, a.por);
  EXPECT_EQ(b.stop, a.stop);
  EXPECT_EQ(b.stats.states, a.stats.states);
  EXPECT_EQ(b.stats.visited_bytes, a.stats.visited_bytes);
  ASSERT_EQ(b.states.size(), a.states.size());
  for (std::size_t i = 0; i < a.states.size(); ++i) {
    EXPECT_EQ(b.states[i].parent, a.states[i].parent);
    EXPECT_EQ(b.states[i].thread, a.states[i].thread);
    EXPECT_EQ(b.states[i].label, a.states[i].label);
    EXPECT_EQ(b.states[i].enqueued, a.states[i].enqueued);
    EXPECT_EQ(b.states[i].encoding, a.states[i].encoding);
  }
}

TEST(Checkpoint, MalformedDocumentsAreRejected) {
  EXPECT_THROW((void)engine::from_json("not json"), support::Error);
  EXPECT_THROW((void)engine::from_json("{}"), support::Error);
  EXPECT_THROW(
      (void)engine::from_json(R"({"format":"rc11-witness","version":1})"),
      support::Error);
  EXPECT_THROW((void)engine::load_checkpoint("/nonexistent/ckpt.json"),
               support::Error);
}

TEST(Checkpoint, UnsupportedVersionIsRejected) {
  const auto program = parser::parse_file(prog("sb.rc11"));
  TempFile ck("budget_version.json");
  ExploreOptions opts;
  opts.max_states = 8;
  opts.checkpoint_path = ck.path;
  (void)explore::explore(program.sys, opts);
  auto ckpt = engine::load_checkpoint(ck.path);
  auto doc = engine::to_json(ckpt);
  const auto pos = doc.find("\"version\": 1");
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, 12, "\"version\": 2");
  EXPECT_THROW((void)engine::from_json(doc), support::Error);
}

TEST(Checkpoint, TamperedEncodingFailsReconstruction) {
  const auto program = parser::parse_file(prog("sb.rc11"));
  TempFile ck("budget_tamper.json");
  ExploreOptions opts;
  opts.max_states = 8;
  opts.checkpoint_path = ck.path;
  (void)explore::explore(program.sys, opts);

  auto ckpt = engine::load_checkpoint(ck.path);
  ASSERT_GE(ckpt.states.size(), 2u);
  ckpt.states[1].encoding[0] ^= 0xdeadbeef;  // corrupt a non-root state

  ExploreOptions resume_opts;
  resume_opts.resume = &ckpt;
  EXPECT_THROW((void)explore::explore(program.sys, resume_opts),
               support::Error);
}

TEST(Checkpoint, WrongProgramIsRejected) {
  const auto ticket = parser::parse_file(prog("ticket_lock.rc11"));
  TempFile ck("budget_wrongprog.json");
  ExploreOptions opts;
  opts.max_states = 20;
  opts.checkpoint_path = ck.path;
  (void)explore::explore(ticket.sys, opts);

  const auto ckpt = engine::load_checkpoint(ck.path);
  const auto other = parser::parse_file(prog("sb.rc11"));
  ExploreOptions resume_opts;
  resume_opts.resume = &ckpt;
  EXPECT_THROW((void)explore::explore(other.sys, resume_opts),
               support::Error);
}

// A resumed run is a first-class run: invariant violations found after the
// resume still carry replayable witnesses.
TEST(Checkpoint, ResumedRunViolationsCarryReplayableWitnesses) {
  const auto program = parser::parse_file(prog("sb.rc11"));
  const auto invariant =
      [](const lang::System& sys,
         const lang::Config& cfg) -> std::optional<std::string> {
    if (cfg.all_done(sys)) return "final state reached";
    return std::nullopt;
  };

  TempFile ck("budget_witness.json");
  ExploreOptions trunc_opts;
  trunc_opts.max_states = 5;
  trunc_opts.checkpoint_path = ck.path;
  (void)explore::explore(program.sys, trunc_opts);

  const auto ckpt = engine::load_checkpoint(ck.path);
  ExploreOptions resume_opts;
  resume_opts.resume = &ckpt;
  resume_opts.track_traces = true;
  const auto resumed = explore::explore(program.sys, resume_opts, invariant);
  ASSERT_FALSE(resumed.violations.empty());
  for (const auto& v : resumed.violations) {
    ASSERT_TRUE(v.witness.has_value());
    const auto r = witness::replay(program.sys, *v.witness);
    EXPECT_TRUE(r.ok) << r.error;
  }
}

// The outline checker rides the same machinery: a truncated check resumes
// to the same verdict and the same obligation count.
TEST(Checkpoint, OutlineCheckResumes) {
  const auto program = parser::parse_file(prog("mp_verified.rc11"));
  ASSERT_TRUE(program.outline.has_value());

  og::OutlineCheckOptions full_opts;
  const auto full = og::check_outline(program.sys, *program.outline, full_opts);
  ASSERT_EQ(full.stop, StopReason::Complete);
  ASSERT_TRUE(full.valid);

  TempFile ck("budget_outline.json");
  og::OutlineCheckOptions trunc_opts;
  trunc_opts.max_states = 5;
  trunc_opts.checkpoint_path = ck.path;
  const auto truncated =
      og::check_outline(program.sys, *program.outline, trunc_opts);
  ASSERT_EQ(truncated.stop, StopReason::StateCap);

  const auto ckpt = engine::load_checkpoint(ck.path);
  og::OutlineCheckOptions resume_opts;
  resume_opts.resume = &ckpt;
  const auto resumed =
      og::check_outline(program.sys, *program.outline, resume_opts);
  EXPECT_EQ(resumed.stop, StopReason::Complete);
  EXPECT_TRUE(resumed.valid);
  EXPECT_EQ(resumed.stats.states, full.stats.states);
  EXPECT_EQ(resumed.obligations_checked, full.obligations_checked);
}

}  // namespace
