// rc11-refine — command-line contextual-refinement checker: given two
// programs with *identical client parts* (same client variables and client
// registers, in the same order), decide whether the concrete program
// refines the abstract one per the paper's Section 6.
//
// Usage:
//   rc11-refine [options] abstract.rc11 concrete.rc11
//
// Options:
//   --max-states N    per-system exploration bound (default 1000000)
//   --threads N       workers for graph construction and client projection
//                     (0 = hardware concurrency, default 1)
//   --trace-only      skip the Def. 8 simulation, run only trace inclusion
//   --witness FILE    write the counterexample run (a run of the *concrete*
//                     program) as a JSON witness, minimized before emission
//   --replay FILE     re-execute a JSON witness against the concrete program
//                     instead of checking; exit 0 iff every step replays
//
// The abstract program typically uses abstract objects (lock/stack
// declarations); the concrete one inlines an implementation over library
// variables and `reg library` registers.  Exit status: 0 refines, 1 usage /
// parse errors, 2 refinement fails (or --replay diverged), 3 inconclusive
// (truncated).

#include <charconv>
#include <iostream>
#include <optional>
#include <string>

#include "parser/parser.hpp"
#include "refinement/refinement.hpp"
#include "witness/witness.hpp"

namespace {

int usage() {
  std::cerr << "usage: rc11-refine [--max-states N] [--threads N] "
               "[--trace-only] [--witness FILE] [--replay FILE] "
               "abstract.rc11 concrete.rc11\n";
  return 1;
}

/// Whole-string numeric parse; rejects "abc", "8x", "" instead of aborting.
template <typename T>
bool parse_num(const std::string& s, T& out) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rc11;

  std::string abs_path;
  std::string conc_path;
  refinement::SimulationOptions sim_opts;
  refinement::TraceInclusionOptions trace_opts;
  bool trace_only = false;
  std::string witness_path;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-states") {
      if (++i >= argc || !parse_num(argv[i], sim_opts.max_states)) {
        return usage();
      }
      trace_opts.max_states = sim_opts.max_states;
    } else if (arg == "--threads") {
      if (++i >= argc || !parse_num(argv[i], sim_opts.num_threads)) {
        return usage();
      }
      trace_opts.num_threads = sim_opts.num_threads;
    } else if (arg == "--trace-only") {
      trace_only = true;
    } else if (arg == "--witness") {
      if (++i >= argc) return usage();
      witness_path = argv[i];
    } else if (arg == "--replay") {
      if (++i >= argc) return usage();
      replay_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (abs_path.empty()) {
      abs_path = arg;
    } else if (conc_path.empty()) {
      conc_path = arg;
    } else {
      return usage();
    }
  }
  if (abs_path.empty() || conc_path.empty()) return usage();

  try {
    const auto abs = parser::parse_file(abs_path);
    const auto conc = parser::parse_file(conc_path);

    if (!replay_path.empty()) {
      const auto w = witness::load(replay_path);
      const auto r = witness::replay(conc.sys, w);
      if (r.ok) {
        std::cout << "replay OK: " << w.steps.size()
                  << " step(s) re-executed against the concrete program, "
                     "final digest matches\n";
        return 0;
      }
      std::cout << "replay FAILED after " << r.steps_applied
                << " step(s): " << r.error << "\n";
      return 2;
    }

    bool refines = true;
    bool inconclusive = false;
    std::optional<witness::Witness> counterexample;

    if (!trace_only) {
      const auto sim =
          refinement::check_forward_simulation(abs.sys, conc.sys, sim_opts);
      std::cout << "forward simulation (Def. 8):  "
                << (sim.holds ? "holds" : "fails") << "  [abs "
                << sim.abstract_states << " states, conc "
                << sim.concrete_states << " states, " << sim.surviving_pairs
                << "/" << sim.candidate_pairs << " pairs survive]\n";
      if (!sim.holds) {
        std::cout << "  diagnosis: " << sim.diagnosis << "\n";
        for (const auto& step : sim.counterexample) {
          std::cout << "    " << step << "\n";
        }
        if (sim.witness) counterexample = sim.witness;
      }
      refines = refines && sim.holds;
      inconclusive = inconclusive || sim.truncated;
    }

    const auto tr =
        refinement::check_trace_inclusion(abs.sys, conc.sys, trace_opts);
    std::cout << "trace inclusion  (Defs. 5-7): "
              << (tr.holds ? "holds" : "fails") << "  [" << tr.product_nodes
              << " product nodes]\n";
    if (!tr.holds && !tr.what.empty()) {
      std::cout << "  witness: " << tr.what << "\n";
    }
    if (!tr.holds && tr.witness && !counterexample) {
      counterexample = tr.witness;
    }
    refines = refines && tr.holds;
    inconclusive = inconclusive || tr.truncated;

    if (!witness_path.empty()) {
      if (counterexample) {
        const auto w = witness::minimize(conc.sys, *counterexample);
        witness::save(w, witness_path);
        std::cout << "witness (" << w.steps.size() << " step(s), concrete run)"
                  << " written to " << witness_path << "\n";
      } else {
        std::cout << "no counterexample run; " << witness_path
                  << " not written\n";
      }
    }

    if (inconclusive) {
      std::cout << "INCONCLUSIVE: exploration truncated\n";
      return 3;
    }
    std::cout << (refines ? "REFINES" : "DOES NOT REFINE") << "\n";
    return refines ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "rc11-refine: " << e.what() << "\n";
    return 1;
  }
}
