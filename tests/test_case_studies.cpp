// Tests for the mutual-exclusion case studies: Peterson's and Dekker's
// algorithms are correct under the SC baseline but broken under RC11 RAR
// (the store-buffering shape between flag publication and flag read cannot
// be ordered by release/acquire) — and the verified lock implementations
// protect the same increment correctly under RC11 RAR.

#include <gtest/gtest.h>

#include "explore/explorer.hpp"
#include "litmus/case_studies.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"

namespace {

using namespace rc11;
using litmus::increment_lost;

class MutexStudy : public ::testing::TestWithParam<int> {
 protected:
  static litmus::MutexCaseStudy study(int idx) {
    return idx == 0 ? litmus::peterson_counter() : litmus::dekker_counter();
  }
};

TEST_P(MutexStudy, BrokenUnderRC11RAR) {
  const auto s = study(GetParam());
  EXPECT_TRUE(increment_lost(s, {}))
      << s.name << " should lose an increment under release/acquire";
}

TEST_P(MutexStudy, CorrectUnderSCBaseline) {
  const auto s = study(GetParam());
  memsem::SemanticsOptions sc;
  sc.model = memsem::MemoryModel::SC;
  EXPECT_FALSE(increment_lost(s, sc))
      << s.name << " is a correct SC algorithm";
}

TEST_P(MutexStudy, TerminatingRunsExist) {
  auto s = study(GetParam());
  const auto result = explore::explore(s.sys);
  EXPECT_GT(result.stats.finals, 0u);
  EXPECT_FALSE(result.truncated);
}

INSTANTIATE_TEST_SUITE_P(Protocols, MutexStudy, ::testing::Range(0, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("peterson")
                                                  : std::string("dekker");
                         });

TEST(MutexStudy, LockLibrariesProtectTheSameIncrement) {
  // The constructive counterpart: every verified lock implementation keeps
  // the increment exact under RC11 RAR.
  const auto check = [](locks::LockObject& lock) {
    const auto sys =
        locks::instantiate(locks::counter_client(2, 1), lock);
    const auto result = explore::explore(sys);
    const auto x = sys.locations().find("x");
    for (const auto& cfg : result.final_configs) {
      if (cfg.mem.op(cfg.mem.last_op(x)).value != 2) return false;
    }
    return result.stats.finals > 0;
  };
  locks::AbstractLock abs;
  EXPECT_TRUE(check(abs));
  locks::SeqLock seq;
  EXPECT_TRUE(check(seq));
  locks::TicketLock ticket;
  EXPECT_TRUE(check(ticket));
  locks::CasSpinLock spin;
  EXPECT_TRUE(check(spin));
  locks::TTASLock ttas;
  EXPECT_TRUE(check(ttas));
}

TEST(MutexStudy, BrokenLocksLoseIncrementsToo) {
  locks::SeqLock broken{/*releasing_release=*/false};
  const auto sys = locks::instantiate(locks::counter_client(2, 1), broken);
  const auto result = explore::explore(sys);
  const auto x = sys.locations().find("x");
  bool lost = false;
  for (const auto& cfg : result.final_configs) {
    if (cfg.mem.op(cfg.mem.last_op(x)).value != 2) lost = true;
  }
  EXPECT_TRUE(lost)
      << "a relaxed release forfeits write visibility, so the read-then-write "
         "increment can act on stale data";
}


// --- the positive counterpart: a barrier that IS correct under RC11 RAR -------

TEST(Barrier, ExchangesDataUnderRC11RAR) {
  // The FAI arrival chain + releasing sense flip + acquiring spin is enough
  // synchronisation: after the barrier both threads definitely see the
  // other's pre-barrier write.
  auto study = litmus::barrier_exchange();
  const auto result = explore::explore(study.sys);
  ASSERT_GT(result.stats.finals, 0u);
  EXPECT_EQ(result.stats.blocked, 0u);
  const auto outcomes = explore::final_register_values(
      study.sys, result, {study.r0, study.r1});
  const std::vector<std::vector<lang::Value>> expected{{1, 1}};
  EXPECT_EQ(outcomes, expected)
      << "every terminating run must exchange both data";
}

TEST(Barrier, BreaksWithoutTheReleasingFlip) {
  // Ablation at the program level: make the sense flip relaxed and the
  // spinner can leave the barrier without the flipper's (and transitively
  // the other arrival's) data.
  // A fresh construction mirroring barrier_exchange with a relaxed store
  // instead of the releasing one.
  lang::System sys;
  const auto a = sys.client_var("a", 0);
  const auto b = sys.client_var("b", 0);
  const auto count = sys.library_var("count", 0);
  const auto sense = sys.library_var("sense", 0);
  std::vector<lang::Reg> outs;
  for (int i = 0; i < 2; ++i) {
    const auto mine = i == 0 ? a : b;
    const auto other = i == 0 ? b : a;
    auto tb = sys.thread();
    auto arrived = tb.reg("arrived");
    auto spin = tb.reg("spin");
    auto r = tb.reg("r");
    tb.store(mine, lang::c(1));
    tb.fai(arrived, count);
    tb.if_else(
        lang::Expr{arrived} == lang::c(1),
        [&] { tb.store(sense, lang::c(1), "sense := 1 (BROKEN relaxed)"); },
        [&] {
          tb.do_until([&] { tb.load_acq(spin, sense); },
                      lang::Expr{spin} == lang::c(1));
        });
    tb.load(r, other);
    outs.push_back(r);
  }
  const auto result = explore::explore(sys);
  bool stale = false;
  for (const auto& o :
       explore::final_register_values(sys, result, outs)) {
    if (o[0] != 1 || o[1] != 1) stale = true;
  }
  EXPECT_TRUE(stale) << "a relaxed sense flip must leak a stale read";
}

}  // namespace
