// Experiment F4: throughput of the combined program semantics (Fig. 4 over
// Fig. 5) — states and transitions explored per second on representative
// programs.  This is the figure of merit for the substitution of Isabelle
// proofs by exhaustive checking: it bounds the instantiation sizes every
// other experiment can afford.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"

namespace {

using namespace rc11;

void BM_ExploreMP(benchmark::State& state) {
  std::uint64_t states = 0, transitions = 0;
  for (auto _ : state) {
    auto test = litmus::mp_release_acquire();
    const auto result = explore::explore(test.sys);
    states = result.stats.states;
    transitions = result.stats.transitions;
    benchmark::DoNotOptimize(states);
  }
  state.counters["states_per_s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["transitions_per_s"] = benchmark::Counter(
      static_cast<double>(transitions * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreMP);

void BM_ExploreIRIW(benchmark::State& state) {
  std::uint64_t states = 0, transitions = 0;
  for (auto _ : state) {
    auto test = litmus::iriw_release_acquire();
    const auto result = explore::explore(test.sys);
    states = result.stats.states;
    transitions = result.stats.transitions;
    benchmark::DoNotOptimize(states);
  }
  state.counters["states_per_s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["transitions_per_s"] = benchmark::Counter(
      static_cast<double>(transitions * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreIRIW);

/// Lock-client exploration scaling: threads × rounds of the most-general
/// client over the ticket lock (the largest concrete state spaces in the
/// refinement experiments).
void BM_ExploreTicketClient(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto rounds = static_cast<unsigned>(state.range(1));
  std::uint64_t states = 0;
  for (auto _ : state) {
    locks::TicketLock lock;
    const auto sys = locks::instantiate(locks::mgc_client(threads, rounds), lock);
    const auto result = explore::explore(sys);
    states = result.stats.states;
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
  state.SetLabel(std::to_string(threads) + " threads x " +
                 std::to_string(rounds) + " rounds");
}
BENCHMARK(BM_ExploreTicketClient)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({3, 1});

}  // namespace

BENCHMARK_MAIN();
