// rc11-refine — command-line contextual-refinement checker: given two
// programs with *identical client parts* (same client variables and client
// registers, in the same order), decide whether the concrete program
// refines the abstract one per the paper's Section 6.
//
// Usage:
//   rc11-refine [options] abstract.rc11 concrete.rc11
//
// Options (see tools/cli_common.hpp for the flags shared by every tool):
//   --max-states N    per-system exploration bound (default 1000000)
//   --threads N       workers for graph construction and client projection
//                     (0 = hardware concurrency, default 1)
//   --por             client-invisible ample reduction while building the
//                     two state graphs (graph edges stay single steps, so
//                     counterexamples replay unchanged)
//   --symmetry        thread-symmetry quotient of the trace-inclusion
//                     product (see refinement.hpp); implies --trace-only
//                     (the Def. 8 simulation fixpoint is not quotiented);
//                     verdicts and witnesses are unchanged, only the
//                     product-node count shrinks
//   --rf-quotient     rejected: the refinement checkers compare client
//                     projections across two systems, which the
//                     execution-graph quotient does not relate
//   --strategy S      coverage strategy: exhaustive (default), por, or
//                     sample[:N].  Sampling covers only the *concrete*
//                     graph with N seeded random schedules (the abstract
//                     graph — the specification — is always exhaustive) and
//                     implies --trace-only: a violation found is definite
//                     (exit 2, replayable witness); a clean run is a lower
//                     bound (exit 3)
//   --seed S          RNG seed for --strategy sample (default 0)
//   --stats           also print the per-check size accounting
//   --json FILE       write a machine-readable run summary
//   --trace-only      skip the Def. 8 simulation, run only trace inclusion
//   --witness FILE    write the counterexample run (a run of the *concrete*
//                     program) as a JSON witness, minimized before emission
//   --replay FILE     re-execute a JSON witness against the concrete program
//                     instead of checking; exit 0 iff every step replays
//   --deadline-ms MS  wall-clock budget *per graph build* (0 = none)
//   --mem-budget B    visited-set memory budget per graph build, optional
//                     K/M/G suffix (0 = unlimited)
//
// --checkpoint/--resume are rejected: a refinement check builds two state
// graphs per run, so a single checkpoint file would be ambiguous.
// SIGINT/SIGTERM drain whichever graph build is running; the tool still
// prints its partial report and exits 3.  RC11_FAULT injects faults.
//
// The abstract program typically uses abstract objects (lock/stack
// declarations); the concrete one inlines an implementation over library
// variables and `reg library` registers.  Exit status: 0 refines, 1 usage /
// parse errors, 2 refinement fails (or --replay diverged), 3 inconclusive
// (truncated).

#include <iostream>
#include <optional>
#include <string>

#include "cli_common.hpp"
#include "parser/parser.hpp"
#include "refinement/refinement.hpp"
#include "witness/witness.hpp"

namespace {

int usage() {
  std::cerr << "usage: rc11-refine " << rc11::cli::kCommonUsage
            << " [--trace-only] abstract.rc11 concrete.rc11\n";
  return rc11::cli::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rc11;

  std::string abs_path;
  std::string conc_path;
  cli::CommonOptions common;
  bool trace_only = false;

  for (int i = 1; i < argc; ++i) {
    switch (cli::parse_common_flag(argc, argv, i, common)) {
      case cli::FlagStatus::Consumed:
        continue;
      case cli::FlagStatus::Error:
        return usage();
      case cli::FlagStatus::NotMine:
        break;
    }
    const std::string arg = argv[i];
    if (arg == "--trace-only") {
      trace_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (abs_path.empty()) {
      abs_path = arg;
    } else if (conc_path.empty()) {
      conc_path = arg;
    } else {
      return usage();
    }
  }
  if (abs_path.empty() || conc_path.empty()) return usage();
  if (const std::string err = cli::resolve_strategy(common); !err.empty()) {
    std::cerr << "rc11-refine: " << err << "\n";
    return cli::kExitUsage;
  }
  if (common.workers > 0) {
    // The refinement fixpoint runs over a product of two prebuilt graphs,
    // not over the frontier the supervisor partitions.
    std::cerr << "rc11-refine: --workers is not supported here (supervised "
                 "multi-process checking covers rc11-run, rc11-verify and "
                 "rc11-race)\n";
    return cli::kExitUsage;
  }
  if (common.mode == engine::Strategy::Sample && !trace_only) {
    // The Def. 8 simulation fixpoint needs the full concrete edge relation
    // (missing edges would let pairs survive vacuously); the trace-inclusion
    // game is the checker that stays sound on a sampled concrete subgraph.
    std::cout << "note: --strategy sample implies --trace-only (the Def. 8 "
                 "simulation needs the complete concrete graph)\n";
    trace_only = true;
  }
  if (common.symmetry && !trace_only) {
    // Only the trace-inclusion product is quotiented (see
    // refinement::SimulationOptions for why the fixpoint is not).
    std::cout << "note: --symmetry implies --trace-only (the Def. 8 "
                 "simulation fixpoint is not quotiented)\n";
    trace_only = true;
  }
  if (common.rf_quotient) {
    // Neither the Def. 8 simulation fixpoint nor the trace-inclusion product
    // is quotiented by reads-from: both compare *client-projected* states
    // across two different systems, and the quotient keys are only
    // comparable within one system.
    std::cerr << "rc11-refine: --rf-quotient is not supported here (the "
                 "refinement checkers compare client projections across two "
                 "systems, which the execution-graph quotient does not "
                 "relate); use --por or --symmetry to shrink the graphs "
                 "instead\n";
    return cli::kExitUsage;
  }
  if (!common.checkpoint_path.empty() || !common.resume_path.empty()) {
    std::cerr << "rc11-refine: --checkpoint/--resume are not supported here "
                 "(a refinement check builds two state graphs per run, so a "
                 "single checkpoint file is ambiguous); use --deadline-ms / "
                 "--mem-budget to bound the run instead\n";
    return cli::kExitUsage;
  }

  const auto* cancel = cli::install_signal_cancel();
  const auto fault = rc11::engine::FaultPlan::from_env();

  refinement::SimulationOptions sim_opts;
  sim_opts.max_states = common.max_states;
  sim_opts.num_threads = common.num_threads;
  sim_opts.por = common.por;
  sim_opts.max_visited_bytes = common.max_visited_bytes;
  sim_opts.deadline_ms = common.deadline_ms;
  sim_opts.cancel = cancel;
  sim_opts.fault = fault;
  refinement::TraceInclusionOptions trace_opts;
  trace_opts.max_states = common.max_states;
  trace_opts.num_threads = common.num_threads;
  trace_opts.por = common.por;
  trace_opts.symmetry = common.symmetry;
  trace_opts.mode = common.mode;
  trace_opts.sample = common.sample;
  trace_opts.max_visited_bytes = common.max_visited_bytes;
  trace_opts.deadline_ms = common.deadline_ms;
  trace_opts.cancel = cancel;
  trace_opts.fault = fault;

  try {
    const auto abs = parser::parse_file(abs_path);
    const auto conc = parser::parse_file(conc_path);

    if (!common.replay_path.empty()) {
      return cli::run_replay(conc.sys, common);
    }

    bool refines = true;
    bool inconclusive = false;
    std::optional<witness::Witness> counterexample;
    auto summary = witness::Json::object();
    summary.set("tool", witness::Json::string("rc11-refine"));
    summary.set("abstract", witness::Json::string(abs_path));
    summary.set("concrete", witness::Json::string(conc_path));
    summary.set("strategy",
                witness::Json::string(engine::to_string(common.mode)));
    if (common.mode == engine::Strategy::Sample) {
      summary.set("seed", witness::Json::integer(
                              static_cast<std::int64_t>(common.sample.seed)));
    }

    if (!trace_only) {
      const auto sim =
          refinement::check_forward_simulation(abs.sys, conc.sys, sim_opts);
      std::cout << "forward simulation (Def. 8):  "
                << (sim.holds ? "holds" : "fails") << "  [abs "
                << sim.abstract_states << " states, conc "
                << sim.concrete_states << " states, " << sim.surviving_pairs
                << "/" << sim.candidate_pairs << " pairs survive]\n";
      if (common.stats) {
        std::cout << "  refinement iterations: " << sim.refinement_iterations
                  << "\n";
      }
      if (!sim.holds) {
        std::cout << "  diagnosis: " << sim.diagnosis << "\n";
        for (const auto& step : sim.counterexample) {
          std::cout << "    " << step << "\n";
        }
        if (sim.witness) counterexample = sim.witness;
      }
      refines = refines && sim.holds;
      inconclusive = inconclusive || sim.truncated;

      auto sim_json = witness::Json::object();
      sim_json.set("holds", witness::Json::boolean(sim.holds));
      sim_json.set("abstract_states",
                   witness::Json::integer(
                       static_cast<std::int64_t>(sim.abstract_states)));
      sim_json.set("concrete_states",
                   witness::Json::integer(
                       static_cast<std::int64_t>(sim.concrete_states)));
      sim_json.set("candidate_pairs",
                   witness::Json::integer(
                       static_cast<std::int64_t>(sim.candidate_pairs)));
      sim_json.set("surviving_pairs",
                   witness::Json::integer(
                       static_cast<std::int64_t>(sim.surviving_pairs)));
      summary.set("simulation", std::move(sim_json));
    }

    const auto tr =
        refinement::check_trace_inclusion(abs.sys, conc.sys, trace_opts);
    std::cout << "trace inclusion  (Defs. 5-7): "
              << (tr.holds ? "holds" : "fails") << "  [" << tr.product_nodes
              << " product nodes]\n";
    if (!tr.holds && !tr.what.empty()) {
      std::cout << "  witness: " << tr.what << "\n";
    }
    if (!tr.holds && tr.witness && !counterexample) {
      counterexample = tr.witness;
    }
    refines = refines && tr.holds;
    inconclusive = inconclusive || tr.truncated;

    auto tr_json = witness::Json::object();
    tr_json.set("holds", witness::Json::boolean(tr.holds));
    tr_json.set("product_nodes",
                witness::Json::integer(
                    static_cast<std::int64_t>(tr.product_nodes)));
    summary.set("trace_inclusion", std::move(tr_json));

    if (!common.witness_path.empty()) {
      if (counterexample) {
        cli::write_witness(conc.sys, *counterexample, common.witness_path);
      } else {
        std::cout << "no counterexample run; " << common.witness_path
                  << " not written\n";
      }
    }

    summary.set("refines", witness::Json::boolean(refines));
    summary.set("inconclusive", witness::Json::boolean(inconclusive));
    if (!common.json_path.empty()) {
      cli::write_json_summary(summary, common.json_path);
    }

    // A found violation is definite even when coverage was partial — every
    // path to holds == false goes through a complete graph pair or a real
    // sampled run — so DOES NOT REFINE wins over INCONCLUSIVE (mirroring
    // rc11-verify's INVALID-beats-INCONCLUSIVE ordering).
    if (!refines) {
      std::cout << "DOES NOT REFINE\n";
      return cli::kExitFail;
    }
    if (inconclusive) {
      std::cout << "INCONCLUSIVE: exploration truncated\n";
      return cli::kExitInconclusive;
    }
    std::cout << "REFINES\n";
    return cli::kExitOk;
  } catch (const std::exception& e) {
    std::cerr << "rc11-refine: " << e.what() << "\n";
    return cli::kExitUsage;
  }
}
