// End-to-end tests of the command-line tools (rc11-run, rc11-refine) against
// the sample programs in tools/programs/, driven through std::system.  Paths
// are injected by CMake compile definitions.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string bin(const std::string& name) {
  return std::string(RC11_BIN_DIR) + "/tools/" + name;
}

std::string prog(const std::string& name) {
  return std::string(RC11_SRC_DIR) + "/tools/programs/" + name;
}

/// Per-process scratch path: ctest runs each test case as its own process in
/// parallel, so a fixed shared name would race.
std::string tmp_path(const std::string& stem) {
  return "/tmp/rc11_cli_" + std::to_string(getpid()) + "_" + stem;
}

int run(const std::string& cmd, std::string* output = nullptr) {
  const std::string out_path = tmp_path("test.out");
  const std::string redirected = cmd + " > " + out_path + " 2>&1";
  const int status = std::system(redirected.c_str());
  if (output != nullptr) {
    std::ifstream in{out_path};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *output = buffer.str();
  }
  return WEXITSTATUS(status);
}

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Cli, RunExploresSampleProgram) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-run") + " " + prog("mp_stack.rc11"), &out), 0);
  EXPECT_NE(out.find("states:"), std::string::npos);
  EXPECT_NE(out.find("r1=1, r2=5"), std::string::npos)
      << "publication outcome expected:\n" << out;
}

TEST(Cli, RunAblationChangesOutcomes) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-run") + " --no-ctview " + prog("mp_stack.rc11"), &out),
            0);
  EXPECT_NE(out.find("r1=1, r2=0"), std::string::npos)
      << "A1 ablation must expose the stale read:\n" << out;
}

TEST(Cli, RunRejectsBadUsage) {
  EXPECT_EQ(run(bin("rc11-run") + " --bogus-flag whatever"), 1);
  EXPECT_EQ(run(bin("rc11-run") + " /nonexistent/file.rc11"), 1);
}

TEST(Cli, RunWritesDotFile) {
  std::string out;
  const std::string dot_path = tmp_path("graph.dot");
  EXPECT_EQ(run(bin("rc11-run") + " --dot " + dot_path + " " + prog("sb.rc11"),
                &out),
            0);
  EXPECT_NE(read_file(dot_path).find("digraph"), std::string::npos);
}

TEST(Cli, RefineAcceptsSeqlockPair) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-refine") + " " + prog("lock_client_abstract.rc11") +
                    " " + prog("lock_client_seqlock.rc11"),
                &out),
            0);
  EXPECT_NE(out.find("REFINES"), std::string::npos);
}

TEST(Cli, RefineRejectsBrokenPair) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-refine") + " " + prog("lock_client_abstract.rc11") +
                    " " + prog("lock_client_broken.rc11"),
                &out),
            2);
  EXPECT_NE(out.find("DOES NOT REFINE"), std::string::npos);
}

TEST(Cli, TicketLockSampleSerialises) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-run") + " " + prog("ticket_lock.rc11"), &out), 0);
  EXPECT_NE(out.find("finals:      2"), std::string::npos)
      << "two serialisation orders expected:\n" << out;
}


TEST(Cli, VerifyAcceptsFig3Outline) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-verify") + " " + prog("mp_verified.rc11"), &out), 0);
  EXPECT_NE(out.find("outline VALID"), std::string::npos) << out;
}

TEST(Cli, VerifyRejectsBrokenOutline) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-verify") + " " + prog("mp_broken_outline.rc11"), &out),
            2);
  EXPECT_NE(out.find("outline INVALID"), std::string::npos) << out;
}

TEST(Cli, VerifyNeedsAnOutline) {
  EXPECT_EQ(run(bin("rc11-verify") + " " + prog("sb.rc11")), 1);
}

// --- witness emission and replay --------------------------------------------

const std::string kSbInvariant =
    "'!(done(t1) && done(t2) && r1 == 0 && r2 == 0)'";

TEST(Cli, RunInvariantViolationEmitsReplayableWitness) {
  const std::string wit = tmp_path("sb_witness.json");
  std::string out;
  EXPECT_EQ(run(bin("rc11-run") + " --invariant " + kSbInvariant +
                    " --witness " + wit + " " + prog("sb.rc11"),
                &out),
            2);
  EXPECT_NE(out.find("VIOLATION"), std::string::npos) << out;
  EXPECT_NE(read_file(wit).find("rc11-witness"), std::string::npos);

  EXPECT_EQ(run(bin("rc11-run") + " --replay " + wit + " " + prog("sb.rc11"),
                &out),
            0);
  EXPECT_NE(out.find("replay OK"), std::string::npos) << out;
}

TEST(Cli, RunParallelWitnessReplays) {
  const std::string wit = tmp_path("sb_witness_par.json");
  EXPECT_EQ(run(bin("rc11-run") + " --threads 4 --invariant " + kSbInvariant +
                " --witness " + wit + " " + prog("sb.rc11")),
            2);
  std::string out;
  EXPECT_EQ(run(bin("rc11-run") + " --replay " + wit + " " + prog("sb.rc11"),
                &out),
            0)
      << out;
}

TEST(Cli, RunReplayRejectsWrongProgramAndGarbage) {
  const std::string wit = tmp_path("sb_witness_wrong.json");
  EXPECT_EQ(run(bin("rc11-run") + " --invariant " + kSbInvariant +
                " --witness " + wit + " " + prog("sb.rc11")),
            2);
  // Same witness, different program: the initial digest already diverges.
  std::string out;
  EXPECT_EQ(run(bin("rc11-run") + " --replay " + wit + " " +
                    prog("ticket_lock.rc11"),
                &out),
            2);
  EXPECT_NE(out.find("replay FAILED"), std::string::npos) << out;
  // Corrupted file: parse errors exit 1.
  const std::string garbage = tmp_path("garbage.json");
  std::ofstream{garbage} << "{ not a witness";
  EXPECT_EQ(run(bin("rc11-run") + " --replay " + garbage + " " +
                prog("sb.rc11")),
            1);
}

TEST(Cli, RunRejectsUnknownInvariantName) {
  EXPECT_EQ(run(bin("rc11-run") + " --invariant 'zz == 1' " + prog("sb.rc11")),
            1);
}

TEST(Cli, VerifyWitnessRoundTrips) {
  const std::string wit = tmp_path("outline_witness.json");
  std::string out;
  EXPECT_EQ(run(bin("rc11-verify") + " --witness " + wit + " " +
                    prog("mp_broken_outline.rc11"),
                &out),
            2);
  EXPECT_NE(out.find("written to"), std::string::npos) << out;
  EXPECT_EQ(run(bin("rc11-verify") + " --replay " + wit + " " +
                    prog("mp_broken_outline.rc11"),
                &out),
            0);
  EXPECT_NE(out.find("replay OK"), std::string::npos) << out;
}

TEST(Cli, RefineWitnessRoundTripsAgainstConcrete) {
  const std::string wit = tmp_path("refine_witness.json");
  std::string out;
  EXPECT_EQ(run(bin("rc11-refine") + " --witness " + wit + " " +
                    prog("lock_client_abstract.rc11") + " " +
                    prog("lock_client_broken.rc11"),
                &out),
            2);
  EXPECT_NE(out.find("written to"), std::string::npos) << out;
  EXPECT_EQ(run(bin("rc11-refine") + " --replay " + wit + " " +
                    prog("lock_client_abstract.rc11") + " " +
                    prog("lock_client_broken.rc11"),
                &out),
            0);
  EXPECT_NE(out.find("replay OK"), std::string::npos) << out;
}

TEST(Cli, RefineCombinedPorSymmetryWitnessReplays) {
  // Both reductions at once: the counterexample found in the reduced product
  // must still replay through the full, unreduced semantics.
  const std::string wit = tmp_path("refine_witness_reduced.json");
  std::string out;
  EXPECT_EQ(run(bin("rc11-refine") + " --por --symmetry --witness " + wit +
                    " " + prog("lock_client_abstract.rc11") + " " +
                    prog("lock_client_broken.rc11"),
                &out),
            2);
  EXPECT_NE(out.find("written to"), std::string::npos) << out;
  EXPECT_EQ(run(bin("rc11-refine") + " --replay " + wit + " " +
                    prog("lock_client_abstract.rc11") + " " +
                    prog("lock_client_broken.rc11"),
                &out),
            0);
  EXPECT_NE(out.find("replay OK"), std::string::npos) << out;
}

// --- rc11-race ---------------------------------------------------------------

TEST(Cli, RaceClassifiesRacyAndCleanPrograms) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-race") + " " + prog("mp_na_racy.rc11"), &out), 2);
  EXPECT_NE(out.find("RACE: data race on 'd'"), std::string::npos) << out;
  EXPECT_EQ(run(bin("rc11-race") + " " + prog("mp_na_release.rc11"), &out), 0);
  EXPECT_NE(out.find("races:       0"), std::string::npos) << out;
}

TEST(Cli, RaceSamplingIsNeverDefinitivelyClean) {
  // A clean sampling run is a lower bound, not a proof: exit 3, not 0.
  EXPECT_EQ(run(bin("rc11-race") + " --strategy sample:500 --seed 7 " +
                prog("disjoint_na.rc11")),
            3);
  // But a race found by sampling is still a real race: exit 2.
  EXPECT_EQ(run(bin("rc11-race") + " --strategy sample:500 --seed 7 " +
                prog("mp_na_racy.rc11")),
            2);
}

/// The "races" array of a --json summary, for byte-comparison across engine
/// configurations (the surrounding stats/strategy fields legitimately vary).
std::string race_list_of(const std::string& json) {
  const auto begin = json.find("\"races\"");
  const auto end = json.find("\"stats\"");
  EXPECT_NE(begin, std::string::npos) << json;
  EXPECT_NE(end, std::string::npos) << json;
  return json.substr(begin, end - begin);
}

TEST(Cli, RaceJsonListIdenticalAcrossReductions) {
  const std::string plain = tmp_path("race_plain.json");
  const std::string reduced = tmp_path("race_reduced.json");
  EXPECT_EQ(run(bin("rc11-race") + " --json " + plain + " " +
                prog("dcl_broken.rc11")),
            2);
  EXPECT_EQ(run(bin("rc11-race") + " --threads 4 --por --symmetry --json " +
                reduced + " " + prog("dcl_broken.rc11")),
            2);
  const std::string a = race_list_of(read_file(plain));
  EXPECT_EQ(a, race_list_of(read_file(reduced)));
  EXPECT_NE(a.find("non-atomic write"), std::string::npos) << a;
}

TEST(Cli, RaceWitnessRoundTrips) {
  const std::string wit = tmp_path("race_witness.json");
  std::string out;
  EXPECT_EQ(run(bin("rc11-race") + " --witness " + wit + " " +
                    prog("dcl_broken.rc11"),
                &out),
            2);
  EXPECT_NE(out.find("written to"), std::string::npos) << out;
  EXPECT_EQ(run(bin("rc11-race") + " --replay " + wit + " " +
                    prog("dcl_broken.rc11"),
                &out),
            0);
  EXPECT_NE(out.find("replay OK"), std::string::npos) << out;
  // Same witness against a different program: digests diverge, exit 2.
  EXPECT_EQ(run(bin("rc11-race") + " --replay " + wit + " " +
                    prog("mp_na_racy.rc11"),
                &out),
            2);
  EXPECT_NE(out.find("replay FAILED"), std::string::npos) << out;
}

TEST(Cli, RaceParallelReducedWitnessReplays) {
  const std::string wit = tmp_path("race_witness_par.json");
  EXPECT_EQ(run(bin("rc11-race") + " --threads 4 --por --symmetry" +
                " --witness " + wit + " " + prog("flag_spin_racy.rc11")),
            2);
  std::string out;
  EXPECT_EQ(run(bin("rc11-race") + " --replay " + wit + " " +
                    prog("flag_spin_racy.rc11"),
                &out),
            0)
      << out;
}

}  // namespace
