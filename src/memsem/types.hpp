// rc11lib/memsem/types.hpp
//
// Fundamental identifier and enumeration types for the RC11 RAR memory
// semantics (paper Section 3.3).

#pragma once

#include <cstdint>
#include <limits>

namespace rc11::memsem {

/// Values stored in global variables and registers.
using Value = std::int64_t;

/// Thread identifier (dense, 0-based).
using ThreadId = std::uint32_t;

/// Location identifier: a global variable *or* an abstract object.  The
/// paper's views (tview, mview) are functions from global variables to
/// operations, extended in Section 4 so that abstract objects are also view
/// domain elements (tview_t(l) for a lock l).  We therefore unify both under
/// one dense id space per System.
using LocId = std::uint32_t;

/// Operation identifier: index into the MemState operation arena.  The
/// paper's (action, timestamp) pairs are realised as Op records; OpIds are
/// allocation-ordered, while modification order is kept per location.
using OpId = std::uint32_t;

inline constexpr OpId kNoOp = std::numeric_limits<OpId>::max();

/// Which component of the combined client-library state a location belongs
/// to (GVar_C vs GVar_L in the paper).
enum class Component : std::uint8_t { Client = 0, Library = 1 };

/// What a location is.
enum class LocKind : std::uint8_t {
  Var,    ///< plain C11 global variable (read/write/update)
  Lock,   ///< abstract lock object (Fig. 6)
  Stack,  ///< abstract synchronising stack object (Figs. 1-3; our semantics)
  Queue,  ///< abstract synchronising FIFO queue (extension; same discipline)
};

/// Kind of a modifying operation in the ops set.
enum class OpKind : std::uint8_t {
  Init,         ///< initialising write (timestamp 0) — also object init
  Write,        ///< relaxed write wr(x, n)
  WriteRel,     ///< releasing write wr^R(x, n)
  WriteNa,      ///< non-atomic write wr^NA(x, n) — never releases
  Update,       ///< update upd^RA(x, m, n): atomic read-modify-write
  LockAcquire,  ///< abstract lock acquire_n (Fig. 6)
  LockRelease,  ///< abstract lock release_n (Fig. 6)
  StackPush,    ///< abstract stack push (releasing)
  QueueEnqueue, ///< abstract queue enqueue (releasing)
};

/// Memory-order annotation on program accesses ([A] / [R] / none in the
/// grammar of Section 3.1; CAS and FAI are always RA).  `NonAtomic` extends
/// the grammar with plain C11 non-atomic accesses: operationally they behave
/// like relaxed accesses (same observability, no synchronisation), but they
/// additionally participate in data races — two hb-unordered same-location
/// accesses of which at least one writes and at least one is non-atomic are
/// a race (C11 §5.1.2.4; the rc11-race checker reports them).
enum class MemOrder : std::uint8_t { Relaxed, Acquire, Release, AcqRel, NonAtomic };

/// True iff an access with this order can take part in synchronisation (an
/// acquiring read of a releasing write).  Relaxed and non-atomic accesses
/// never synchronise.
[[nodiscard]] constexpr bool synchronises(MemOrder o) noexcept {
  return o == MemOrder::Acquire || o == MemOrder::Release ||
         o == MemOrder::AcqRel;
}

/// Access footprint of one program step, for the engine's independence
/// relation (engine/transition_system.hpp).  Classifies what the step does
/// to the shared state: nothing (Local), a plain read, a plain write, an
/// atomic read-modify-write, or an abstract object method call (which reads
/// *and* writes the object's history and always synchronises).
enum class AccessKind : std::uint8_t {
  Local,   ///< register/control only — touches no location
  Read,    ///< plain load
  Write,   ///< plain store
  Update,  ///< CAS / FAI — reads and writes the location
  Object,  ///< lock/stack/queue method call on an abstract object
};

/// True iff a step with this footprint can modify the accessed location's
/// history (the "at least one write" side of the dependence relation).
[[nodiscard]] constexpr bool writes_location(AccessKind k) noexcept {
  return k == AccessKind::Write || k == AccessKind::Update ||
         k == AccessKind::Object;
}

/// The distinguished value returned by a pop on an empty stack or a dequeue
/// on an empty queue (Empty in the paper's [s.pop_emp] assertions).
inline constexpr Value kStackEmpty = -1;
inline constexpr Value kQueueEmpty = -1;

}  // namespace rc11::memsem
