// Tests for the program language: expression evaluation, the builder's
// control-flow compilation, and the combined small-step semantics of Fig. 4
// (one instruction = one atomic transition, with all memory nondeterminism
// enumerated).

#include <gtest/gtest.h>

#include <set>

#include "lang/config.hpp"
#include "lang/system.hpp"

namespace {

using namespace rc11::lang;
using rc11::memsem::kStackEmpty;
using rc11::memsem::MemOrder;
using rc11::memsem::OpKind;

// --- expressions -----------------------------------------------------------

TEST(Expr, ConstantAndRegister) {
  const std::vector<Value> regs{10, 20};
  EXPECT_EQ(c(7).eval(regs), 7);
  EXPECT_EQ(Expr::reg(1).eval(regs), 20);
}

TEST(Expr, Arithmetic) {
  const std::vector<Value> regs{6};
  const Expr r0 = Expr::reg(0);
  EXPECT_EQ((r0 + c(2)).eval(regs), 8);
  EXPECT_EQ((r0 - c(2)).eval(regs), 4);
  EXPECT_EQ((r0 * c(2)).eval(regs), 12);
  EXPECT_EQ((r0 % c(4)).eval(regs), 2);
}

TEST(Expr, Comparisons) {
  const std::vector<Value> regs{5};
  const Expr r0 = Expr::reg(0);
  EXPECT_EQ((r0 == c(5)).eval(regs), 1);
  EXPECT_EQ((r0 != c(5)).eval(regs), 0);
  EXPECT_EQ((r0 < c(6)).eval(regs), 1);
  EXPECT_EQ((r0 <= c(5)).eval(regs), 1);
  EXPECT_EQ((r0 > c(5)).eval(regs), 0);
  EXPECT_EQ((r0 >= c(6)).eval(regs), 0);
}

TEST(Expr, Logic) {
  const std::vector<Value> regs{1, 0};
  const Expr a = Expr::reg(0);
  const Expr b = Expr::reg(1);
  EXPECT_EQ((a && b).eval(regs), 0);
  EXPECT_EQ((a || b).eval(regs), 1);
  EXPECT_EQ((!b).eval(regs), 1);
}

TEST(Expr, EvenPredicate) {
  EXPECT_EQ(is_even(c(4)).eval({}), 1);
  EXPECT_EQ(is_even(c(5)).eval({}), 0);
  EXPECT_EQ(is_even(c(-2)).eval({}), 1);
}

TEST(Expr, MaxRegAndToString) {
  const Expr e = (Expr::reg(3) + c(1)) * Expr::reg(1);
  EXPECT_EQ(e.max_reg(), 3);
  EXPECT_EQ(e.to_string(), "((r3 + 1) * r1)");
}

TEST(Expr, ModuloByZeroIsUserError) {
  EXPECT_THROW((void)(c(1) % c(0)).eval({}), rc11::support::Error);
}

// --- builder / control flow ------------------------------------------------

TEST(Builder, RegistersAreChecked) {
  System sys;
  auto t0 = sys.thread();
  auto t1 = sys.thread();
  auto r = t0.reg("r");
  EXPECT_THROW(t1.assign(r, c(1)), rc11::support::InternalError);
  EXPECT_THROW(t0.reg("r"), rc11::support::Error);
}

TEST(Builder, IfElseCompilesAndRuns) {
  System sys;
  auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  auto r = t0.reg("r", 1);
  t0.if_else(
      Expr{r} == c(1), [&] { t0.store(x, c(10)); },
      [&] { t0.store(x, c(20)); });

  auto cfg = initial_config(sys);
  // Run to completion (single thread, deterministic branch).
  while (!cfg.all_done(sys)) {
    auto steps = successors(sys, cfg);
    ASSERT_EQ(steps.size(), 1u);
    cfg = steps[0].after;
  }
  EXPECT_EQ(cfg.mem.op(cfg.mem.last_op(x)).value, 10);
}

TEST(Builder, IfWithoutElse) {
  System sys;
  auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  auto r = t0.reg("r", 0);
  t0.if_else(Expr{r} == c(1), [&] { t0.store(x, c(10)); });
  t0.store(x, c(99));

  auto cfg = initial_config(sys);
  std::size_t steps_taken = 0;
  while (!cfg.all_done(sys)) {
    auto steps = successors(sys, cfg);
    ASSERT_FALSE(steps.empty());
    cfg = steps[0].after;
    ++steps_taken;
  }
  EXPECT_EQ(cfg.mem.op(cfg.mem.last_op(x)).value, 99);
  EXPECT_EQ(cfg.mem.mo(x).size(), 2u) << "then-branch must be skipped";
}

TEST(Builder, WhileLoopCountsDown) {
  System sys;
  auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  auto r = t0.reg("r", 3);
  auto sum = t0.reg("sum", 0);
  t0.while_(Expr{r} > c(0), [&] {
    t0.assign(sum, Expr{sum} + Expr{r});
    t0.assign(r, Expr{r} - c(1));
  });
  t0.store(x, sum);

  auto cfg = initial_config(sys);
  while (!cfg.all_done(sys)) {
    auto steps = successors(sys, cfg);
    ASSERT_EQ(steps.size(), 1u);
    cfg = steps[0].after;
  }
  EXPECT_EQ(cfg.mem.op(cfg.mem.last_op(x)).value, 6);  // 3+2+1
}

TEST(Builder, DoUntilExecutesBodyAtLeastOnce) {
  System sys;
  auto t0 = sys.thread();
  auto r = t0.reg("r", 0);
  t0.do_until([&] { t0.assign(r, Expr{r} + c(1)); }, Expr{r} >= c(1));

  auto cfg = initial_config(sys);
  while (!cfg.all_done(sys)) {
    auto steps = successors(sys, cfg);
    ASSERT_EQ(steps.size(), 1u);
    cfg = steps[0].after;
  }
  EXPECT_EQ(cfg.regs[0][r.id], 1);
}

TEST(Builder, DisassembleListsAllThreads) {
  System sys;
  auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store(x, c(1), "x := 1");
  auto t1 = sys.thread();
  auto r = t1.reg("r");
  t1.load(r, x);
  const auto dis = sys.disassemble();
  EXPECT_NE(dis.find("thread 0"), std::string::npos);
  EXPECT_NE(dis.find("thread 1"), std::string::npos);
  EXPECT_NE(dis.find("x := 1"), std::string::npos);
}

// --- step semantics --------------------------------------------------------

TEST(Step, LoadEnumeratesAllObservableWrites) {
  System sys;
  auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store(x, c(1));
  auto t1 = sys.thread();
  auto r = t1.reg("r");
  t1.load(r, x);

  auto cfg = initial_config(sys);
  // Let thread 0 write first.
  cfg = thread_successors(sys, cfg, 0)[0].after;
  const auto steps = thread_successors(sys, cfg, 1);
  ASSERT_EQ(steps.size(), 2u) << "init and the new write are both readable";
  std::set<Value> seen;
  for (const auto& s : steps) seen.insert(s.after.regs[1][r.id]);
  EXPECT_EQ(seen, (std::set<Value>{0, 1}));
}

TEST(Step, StoreEnumeratesPlacementChoices) {
  System sys;
  auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store(x, c(1));
  auto t1 = sys.thread();
  t1.store(x, c(2));

  auto cfg = initial_config(sys);
  cfg = thread_successors(sys, cfg, 0)[0].after;
  const auto steps = thread_successors(sys, cfg, 1);
  ASSERT_EQ(steps.size(), 2u) << "after init or after the write of 1";
  std::set<std::uint32_t> ranks;
  for (const auto& s : steps) {
    for (const auto w : s.after.mem.mo(x)) {
      if (s.after.mem.op(w).value == 2) ranks.insert(s.after.mem.rank(w));
    }
  }
  EXPECT_EQ(ranks, (std::set<std::uint32_t>{1, 2}));
}

TEST(Step, CasEnumeratesSuccessAndFailure) {
  System sys;
  auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store(x, c(3));
  auto t1 = sys.thread();
  auto r = t1.reg("r");
  t1.cas(r, x, c(0), c(1));

  auto cfg = initial_config(sys);
  cfg = thread_successors(sys, cfg, 0)[0].after;  // x history: init(0), 3
  const auto steps = thread_successors(sys, cfg, 1);
  // Success on init (value 0), failure reading the write of 3.
  ASSERT_EQ(steps.size(), 2u);
  std::set<Value> results;
  for (const auto& s : steps) results.insert(s.after.regs[1][r.id]);
  EXPECT_EQ(results, (std::set<Value>{0, 1}));
}

TEST(Step, CasSuccessCoversTheReadWrite) {
  System sys;
  auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  auto r = t0.reg("r");
  t0.cas(r, x, c(0), c(1));

  auto cfg = initial_config(sys);
  const auto steps = thread_successors(sys, cfg, 0);
  ASSERT_EQ(steps.size(), 1u);
  const auto& mem = steps[0].after.mem;
  EXPECT_TRUE(mem.op(mem.mo(x)[0]).covered);
  EXPECT_EQ(steps[0].after.regs[0][r.id], 1);
}

TEST(Step, FaiReturnsOldValue) {
  System sys;
  auto x = sys.client_var("x", 41);
  auto t0 = sys.thread();
  auto r = t0.reg("r");
  t0.fai(r, x);

  auto cfg = initial_config(sys);
  const auto steps = thread_successors(sys, cfg, 0);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].after.regs[0][r.id], 41);
  const auto& mem = steps[0].after.mem;
  EXPECT_EQ(mem.op(mem.last_op(x)).value, 42);
}

TEST(Step, AcquireBlocksWhenLockHeld) {
  System sys;
  auto l = sys.library_lock("l");
  auto t0 = sys.thread();
  t0.acquire(l);
  auto t1 = sys.thread();
  t1.acquire(l);

  auto cfg = initial_config(sys);
  cfg = thread_successors(sys, cfg, 0)[0].after;
  EXPECT_TRUE(thread_successors(sys, cfg, 1).empty())
      << "second acquire must block while the lock is held";
}

TEST(Step, ReleaseByNonHolderBlocks) {
  System sys;
  auto l = sys.library_lock("l");
  auto t0 = sys.thread();
  t0.acquire(l);
  auto t1 = sys.thread();
  t1.release(l);

  auto cfg = initial_config(sys);
  cfg = thread_successors(sys, cfg, 0)[0].after;
  EXPECT_TRUE(thread_successors(sys, cfg, 1).empty());
}

TEST(Step, PopOnEmptyStackReturnsEmptySentinel) {
  System sys;
  auto s = sys.library_stack("s");
  auto t0 = sys.thread();
  auto r = t0.reg("r", 99);
  t0.pop(r, s);

  auto cfg = initial_config(sys);
  const auto steps = thread_successors(sys, cfg, 0);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].after.regs[0][r.id], kStackEmpty);
  // Non-mutating: memory state unchanged except nothing at all.
  std::vector<std::uint64_t> before, after;
  cfg.mem.encode(before);
  steps[0].after.mem.encode(after);
  EXPECT_EQ(before, after);
}

TEST(Step, AcquireWritesTrueToDestination) {
  System sys;
  auto l = sys.library_lock("l");
  auto t0 = sys.thread();
  auto r = t0.reg("r", 0);
  t0.acquire(l, r);

  auto cfg = initial_config(sys);
  const auto steps = thread_successors(sys, cfg, 0);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].after.regs[0][r.id], 1);
}

TEST(Config, EncodingDistinguishesPcAndRegs) {
  System sys;
  auto t0 = sys.thread();
  auto r = t0.reg("r", 0);
  t0.assign(r, c(1));
  t0.assign(r, c(1));

  auto cfg = initial_config(sys);
  const auto e0 = cfg.encode();
  auto cfg1 = thread_successors(sys, cfg, 0)[0].after;
  const auto e1 = cfg1.encode();
  EXPECT_NE(e0, e1);
  EXPECT_NE(cfg.hash(), cfg1.hash());
}

TEST(Config, ToStringShowsRegisters) {
  System sys;
  auto t0 = sys.thread();
  auto r = t0.reg("myreg", 7);
  t0.assign(r, c(1));
  const auto cfg = initial_config(sys);
  EXPECT_NE(cfg.to_string(sys).find("myreg=7"), std::string::npos);
}

}  // namespace
