// rc11-verify — command-line Owicki-Gries outline checker: parse a program
// with an `outline { ... }` block and check the outline over the reachable
// state space (Sections 5.2-5.3 of the paper).
//
// Usage:
//   rc11-verify [options] program.rc11
//
// Options:
//   --max-states N       exploration bound (default 1000000)
//   --threads N          exploration workers (0 = hardware, default 1;
//                        parallel checking reports failures without traces)
//   --no-interference    skip the pairwise Owicki-Gries side condition
//   --all-failures       report every failed obligation, not just the first
//   --trace              include a counterexample run with each failure
//
// Exit status: 0 valid, 1 usage/parse errors, 2 outline invalid,
// 3 inconclusive (state bound hit).

#include <charconv>
#include <iostream>
#include <string>

#include "og/proof_outline.hpp"
#include "parser/parser.hpp"

namespace {

int usage() {
  std::cerr << "usage: rc11-verify [--max-states N] [--threads N] "
               "[--no-interference] [--all-failures] [--trace] program.rc11\n";
  return 1;
}

/// Whole-string numeric parse; rejects "abc", "8x", "" instead of aborting.
template <typename T>
bool parse_num(const std::string& s, T& out) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rc11;

  std::string path;
  og::OutlineCheckOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-states") {
      if (++i >= argc || !parse_num(argv[i], opts.max_states)) return usage();
    } else if (arg == "--threads") {
      if (++i >= argc || !parse_num(argv[i], opts.num_threads)) return usage();
    } else if (arg == "--no-interference") {
      opts.check_interference = false;
    } else if (arg == "--all-failures") {
      opts.stop_at_first_failure = false;
    } else if (arg == "--trace") {
      opts.track_traces = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  try {
    const auto program = parser::parse_file(path);
    if (!program.outline) {
      std::cerr << "rc11-verify: " << path << " has no outline { ... } block\n";
      return 1;
    }
    const auto result =
        og::check_outline(program.sys, *program.outline, opts);
    std::cout << "states explored:     " << result.stats.states << "\n"
              << "obligations checked: " << result.obligations_checked << "\n";
    if (result.stats.states >= opts.max_states) {
      std::cout << "INCONCLUSIVE: state bound reached\n";
      return 3;
    }
    if (result.valid) {
      std::cout << "outline VALID"
                << (opts.check_interference ? " (incl. interference freedom)"
                                            : "")
                << "\n";
      return 0;
    }
    std::cout << "outline INVALID — " << result.failures.size()
              << " failed obligation(s):\n";
    for (const auto& failure : result.failures) {
      std::cout << "  " << failure.obligation << "\n";
      if (!failure.trace.empty()) {
        std::cout << "  run:\n";
        for (const auto& step : failure.trace) {
          std::cout << "    " << step << "\n";
        }
      }
      std::cout << "  at configuration:\n";
      std::istringstream dump{failure.state_dump};
      std::string line;
      while (std::getline(dump, line)) {
        std::cout << "    " << line << "\n";
      }
    }
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "rc11-verify: " << e.what() << "\n";
    return 1;
  }
}
