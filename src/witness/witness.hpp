// rc11lib/witness/witness.hpp
//
// Counterexample witnesses: first-class, machine-readable evidence for every
// failure mode of the toolchain.  The paper's central argument is that an
// *operational* semantics makes verification evidence checkable by
// re-execution; this module is that argument made executable.  A Witness
// records a concrete run of the combined transition relation — a sequence of
// (thread, label, reached-state digest) steps from the initial configuration
// into a violating configuration — together with what went wrong there.
//
//   * Emission: a versioned JSON schema (docs/FORMAT.md §Witness files) plus
//     DOT and human-readable renderers.
//   * Replay: replay() re-executes the recorded steps through the *real*
//     semantics (lang::successors) and confirms every step is an enabled
//     transition landing on the recorded canonical state — an independent
//     cross-check of both the witness and the semantics, usable as a test
//     oracle.  A tampered or stale witness fails replay with a precise step
//     index.
//   * Minimization: minimize() shrinks a trace before a human sees it — a
//     BFS re-search restricted to the witness's touched states finds a
//     shortest path through them (parallel DFS traces are rarely shortest),
//     optionally under the fuse_local_steps reduction (local steps commute
//     with every other transition, so forcing them to fire eagerly prunes
//     interleavings without losing the target).
//
// Witnesses are produced by the explorer (invariant violations), the
// Owicki-Gries outline checker (failed obligations) and the refinement
// checkers (unmatchable concrete runs); see the `witness` fields on their
// result types, and the --witness/--replay flags on all three CLI tools.
//
// States travel as 64-bit digests (support::hash_words over the canonical
// encoding) rather than full encodings: digests keep witness files small,
// bind each step to the canonical state quotient, and make corruption
// detectable; the chance of a replay accepting a wrong path requires a
// digest collision among the (tiny) successor set of a single state.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/config.hpp"

namespace rc11::witness {

/// Witness schema version written to and required from JSON files.
inline constexpr std::int64_t kFormatVersion = 1;

/// Sentinel for "any thread" in steps whose acting thread was not recorded.
inline constexpr std::uint32_t kAnyThread = UINT32_MAX;

/// One step of a witness run.
struct WitnessStep {
  std::uint32_t thread = kAnyThread;  ///< acting thread (kAnyThread if unknown)
  std::string label;                  ///< human-readable step description
  std::uint64_t after_digest = 0;     ///< canonical digest of the reached state

  friend bool operator==(const WitnessStep&, const WitnessStep&) = default;
};

/// A complete counterexample witness.
struct Witness {
  std::int64_t version = kFormatVersion;
  std::string kind;        ///< "invariant" | "outline" | "refinement"
  std::string source;      ///< producing check, e.g. "explore", "rc11-verify"
  std::string what;        ///< violated property, human-readable
  std::string state_dump;  ///< pretty-printed violating configuration
  std::uint64_t initial_digest = 0;  ///< digest of the initial configuration
  std::vector<WitnessStep> steps;    ///< run from the initial configuration

  /// Digest of the final (violating) state: the last step's target, or the
  /// initial state for empty runs (a violation at the initial configuration).
  [[nodiscard]] std::uint64_t final_digest() const {
    return steps.empty() ? initial_digest : steps.back().after_digest;
  }

  friend bool operator==(const Witness&, const Witness&) = default;
};

/// Canonical digest of a configuration (hash_words over encode()); the
/// digest stored in WitnessStep::after_digest.
[[nodiscard]] std::uint64_t config_digest(const lang::Config& cfg);

/// Fixed-width "0x" + 16-nibble rendering of a 64-bit word, and its inverse.
/// This is how digests travel in witness files and how raw encoding words
/// travel in checkpoint files (engine/checkpoint.hpp) — JSON numbers cannot
/// hold a full uint64 portably.  digest_from_hex throws support::Error on
/// malformed input.
[[nodiscard]] std::string digest_to_hex(std::uint64_t digest);
[[nodiscard]] std::uint64_t digest_from_hex(const std::string& text);

// --- emission / parsing -----------------------------------------------------

/// Serialises to the versioned JSON schema (docs/FORMAT.md).
[[nodiscard]] std::string to_json(const Witness& w);

/// Parses and validates a JSON witness document.  Throws support::Error on
/// malformed JSON, schema violations or an unsupported version.
[[nodiscard]] Witness from_json(std::string_view text);

/// File convenience wrappers (throw support::Error on I/O failure).
void save(const Witness& w, const std::string& path);
[[nodiscard]] Witness load(const std::string& path);

// --- replay -----------------------------------------------------------------

struct ReplayResult {
  bool ok = false;
  std::string error;  ///< first divergence, with its step index
  std::size_t steps_applied = 0;
  /// The configuration replay ended in (the violating configuration when
  /// ok); callers re-evaluate their property here for a full cross-check.
  std::optional<lang::Config> final_config;
};

/// Re-executes the witness through the real semantics: starting from
/// initial_config(sys), every step must be an enabled transition of the
/// recorded thread whose successor has the recorded canonical digest.
/// Succeeds iff the complete run exists and lands on the witness's final
/// digest; the initial digest must match too (a witness replayed against
/// the wrong program or semantics options fails immediately).
[[nodiscard]] ReplayResult replay(const lang::System& sys, const Witness& w);

// --- minimization -----------------------------------------------------------

struct MinimizeOptions {
  /// BFS shortest path through the witness's touched states.
  bool shortest_path = true;
  /// Additionally restrict the re-search with the fuse_local_steps
  /// reduction (sound: local steps commute and cannot be disabled).  Falls
  /// back to the unfused search when the fused graph cannot reach the
  /// target inside the touched set.
  bool elide_local_steps = true;
};

/// Returns a witness for the same violating state with a minimal step
/// sequence (never longer than the input).  The input must replay cleanly;
/// otherwise it is returned unchanged.  The result replays cleanly by
/// construction (the search runs on the real semantics).
[[nodiscard]] Witness minimize(const lang::System& sys, const Witness& w,
                               const MinimizeOptions& options = {});

// --- rendering --------------------------------------------------------------

/// Human-readable multi-line rendering (step table + violating state).
[[nodiscard]] std::string to_text(const Witness& w);

/// Graphviz DOT rendering of the run as a step chain; labels are escaped
/// with support::dot_escape.
[[nodiscard]] std::string to_dot(const Witness& w);

}  // namespace rc11::witness
