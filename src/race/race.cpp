#include "race/race.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <tuple>
#include <utility>

#include "engine/checkpoint.hpp"
#include "engine/symmetry.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"

namespace rc11::race {

namespace {

using engine::ReachOptions;
using engine::ShardedVisitedSet;
using lang::Step;

/// Dedup and sort key of a race: the location plus both access sites in
/// canonical order — exactly what the cross-checks compare, and nothing
/// run-dependent (no traces, no state dumps).
using Key = std::array<std::uint64_t, 7>;

Key key_of(const RaceRecord& r) {
  return {r.loc,
          r.prior.thread,
          r.prior.pc,
          static_cast<std::uint64_t>(r.prior.cat),
          r.current.thread,
          r.current.pc,
          static_cast<std::uint64_t>(r.current.cat)};
}

/// Canonicalises the unordered access pair.  Which side the detector
/// recorded as "prior" depends on the interleaving (and, under reductions,
/// on which orbit member gets visited), so the two sides are sorted by
/// (thread, pc, category) before dedup.
RaceRecord canonical_pair(RaceRecord r) {
  const auto rank = [](const RaceAccess& a) {
    return std::make_tuple(a.thread, a.pc, static_cast<unsigned>(a.cat));
  };
  if (rank(r.current) < rank(r.prior)) std::swap(r.prior, r.current);
  return r;
}

std::string describe(const System& sys, const RaceRecord& r) {
  std::ostringstream os;
  os << "data race on '" << sys.locations().name(r.loc) << "': t"
     << static_cast<unsigned>(r.prior.thread) << " " << access_name(r.prior.cat)
     << " at pc " << r.prior.pc << " vs t"
     << static_cast<unsigned>(r.current.thread) << " "
     << access_name(r.current.cat) << " at pc " << r.current.pc;
  return os.str();
}

/// The race checker's two supervised halves (engine/supervise.hpp): workers
/// ship one event per race record harvested from a step's post-state —
/// numeric record fields plus the racing step's thread, label and post-state
/// digest/dump, everything the supervisor cannot recompute — and the
/// supervisor dedups into the canonical map and rebuilds witnesses from the
/// shared sink, in deterministic state order.
class RaceDelegate final : public engine::DistDelegate {
 public:
  RaceDelegate(const System& traced, const RaceOptions& options)
      : traced_(traced),
        options_(options),
        init_digest_(options.track_traces
                         ? witness::config_digest(lang::initial_config(traced))
                         : 0) {}

  bool evaluate(const Config& cfg, std::span<const Step> steps,
                std::vector<witness::Json>& events) override {
    (void)cfg;
    bool keep = true;
    std::vector<std::uint64_t> enc;
    for (const Step& step : steps) {
      for (const RaceRecord& raw : step.after.mem.race_records()) {
        const RaceRecord rec = canonical_pair(raw);
        if (options_.stop_on_race) keep = false;
        witness::Json e = witness::Json::object();
        e.set("kind", witness::Json::string("race"));
        const auto num = [](std::uint64_t v) {
          return witness::Json::integer(static_cast<std::int64_t>(v));
        };
        e.set("loc", num(rec.loc));
        e.set("pt", num(rec.prior.thread));
        e.set("ppc", num(rec.prior.pc));
        e.set("pcat", num(static_cast<std::uint64_t>(rec.prior.cat)));
        e.set("ct", num(rec.current.thread));
        e.set("cpc", num(rec.current.pc));
        e.set("ccat", num(static_cast<std::uint64_t>(rec.current.cat)));
        e.set("dump", witness::Json::string(step.after.to_string(traced_)));
        e.set("st", num(step.thread));
        e.set("sl", witness::Json::string(step.label));
        enc.clear();
        step.after.encode_into(enc);
        e.set("sd", witness::Json::string(
                        witness::digest_to_hex(support::hash_words(enc))));
        events.push_back(std::move(e));
      }
    }
    return keep;
  }

  bool absorb(const witness::Json& event, std::uint64_t id,
              const ShardedVisitedSet& sink) override {
    const auto num = [&](const char* field) {
      return static_cast<std::uint64_t>(event.at(field).as_int());
    };
    RaceRecord rec;
    rec.loc = static_cast<lang::LocId>(num("loc"));
    rec.prior.thread = static_cast<lang::ThreadId>(num("pt"));
    rec.prior.pc = static_cast<std::uint32_t>(num("ppc"));
    rec.prior.cat = static_cast<RaceCat>(num("pcat"));
    rec.current.thread = static_cast<lang::ThreadId>(num("ct"));
    rec.current.pc = static_cast<std::uint32_t>(num("cpc"));
    rec.current.cat = static_cast<RaceCat>(num("ccat"));
    auto [it, inserted] = races.try_emplace(key_of(rec));
    if (inserted) {
      ReportedRace& out = it->second;
      out.record = rec;
      out.location = traced_.locations().name(rec.loc);
      out.what = describe(traced_, rec);
      out.state_dump = event.at("dump").as_string();
      if (options_.track_traces) {
        const auto edges = sink.path_to(id);
        out.trace.reserve(edges.size() + 2);
        out.trace.emplace_back("init");
        witness::Witness w;
        w.kind = "race";
        w.source = "race";
        w.what = out.what;
        w.state_dump = out.state_dump;
        w.initial_digest = init_digest_;
        w.steps.reserve(edges.size() + 1);
        std::vector<std::uint64_t> enc;
        for (const auto& e : edges) {
          out.trace.push_back(e.label);
          enc.clear();
          sink.decode_state(e.state, enc);
          w.steps.push_back({e.thread, e.label, support::hash_words(enc)});
        }
        const std::string& step_label = event.at("sl").as_string();
        out.trace.push_back(step_label);
        w.steps.push_back(
            {static_cast<lang::ThreadId>(num("st")), step_label,
             witness::digest_from_hex(event.at("sd").as_string())});
        out.witness = std::move(w);
      }
    }
    return !options_.stop_on_race;
  }

  // An ordered map doubles as the dedup set and the canonical output order.
  std::map<Key, ReportedRace> races;

 private:
  const System& traced_;
  const RaceOptions& options_;
  const std::uint64_t init_digest_;
};

/// The --workers path of race::check: identical record harvesting and
/// canonicalisation, run through the supervised multi-process driver.
RaceResult check_dist(const System& traced, const RaceOptions& options) {
  support::require(!options.symmetry,
                   "--workers cannot be combined with --symmetry");
  support::require(options.mode != engine::Strategy::Sample,
                   "--workers cannot be combined with --strategy sample");
  support::require(options.num_threads <= 1,
                   "--workers runs worker processes; combine with --threads 1");
  support::require(options.resume == nullptr,
                   "--workers cannot resume a checkpoint; resume runs "
                   "single-process (the checkpoint it writes is compatible)");

  engine::SystemTransitions ts(traced);
  ShardedVisitedSet sink;
  RaceDelegate delegate(traced, options);

  engine::DistOptions dopts;
  dopts.workers = options.workers;
  dopts.budget.max_states = options.max_states;
  dopts.budget.max_visited_bytes = options.max_visited_bytes;
  dopts.budget.deadline_ms = options.deadline_ms;
  dopts.por = options.por;
  dopts.fuse_local_steps = options.fuse_local_steps;
  dopts.rf_quotient = options.rf_quotient;
  dopts.cancel = options.cancel;
  dopts.fault = options.fault;

  const auto dres = engine::supervise_reach(ts, dopts, delegate, sink);

  RaceResult result;
  result.stats = dres.stats;
  result.stop = dres.stop;
  result.truncated = dres.truncated();
  result.dist = dres.telemetry;
  if (!options.checkpoint_path.empty() && dres.truncated()) {
    engine::save_checkpoint(
        engine::make_checkpoint(sink, dres.stats, dres.stop, options.por,
                                /*symmetry=*/false, options.rf_quotient),
        options.checkpoint_path);
  }
  result.races.reserve(delegate.races.size());
  for (auto& [key, r] : delegate.races) result.races.push_back(std::move(r));
  return result;
}

}  // namespace

const char* access_name(RaceCat cat) noexcept {
  switch (cat) {
    case RaceCat::NaRead:
      return "non-atomic read";
    case RaceCat::AtomicRead:
      return "atomic read";
    case RaceCat::NaWrite:
      return "non-atomic write";
    case RaceCat::AtomicWrite:
      return "atomic write";
  }
  return "access";
}

RaceResult check(const System& sys, const RaceOptions& options) {
  // Race tracking lives inside MemState behind SemanticsOptions::
  // race_detection; run on a copy with the flag forced on so every other
  // checker keeps its clock-free encodings.
  System traced = sys;
  {
    auto sem = traced.options();
    sem.race_detection = true;
    traced.set_options(sem);
  }

  if (options.workers > 0) return check_dist(traced, options);

  if (options.mode == engine::Strategy::Sample) {
    support::require(options.checkpoint_path.empty(),
                     "--checkpoint is not supported under --strategy sample: "
                     "a sampling run has no frontier to save");
    support::require(options.resume == nullptr,
                     "--resume is not supported under --strategy sample: a "
                     "sampling run has no frontier to continue from");
  }

  std::optional<ShardedVisitedSet> trace_store;
  if (options.track_traces || !options.checkpoint_path.empty()) {
    trace_store.emplace();
  }

  std::optional<engine::SymmetryReducer> reducer;
  if (options.symmetry) reducer.emplace(traced);
  const bool orbit = reducer.has_value() && reducer->symmetric();

  ReachOptions ropts;
  ropts.budget.max_states = options.max_states;
  ropts.budget.max_visited_bytes = options.max_visited_bytes;
  ropts.budget.deadline_ms = options.deadline_ms;
  ropts.num_threads = options.num_threads;
  ropts.strategy = options.strategy;
  ropts.fuse_local_steps = options.fuse_local_steps;
  ropts.por = options.por;
  ropts.symmetry = options.symmetry;
  ropts.rf_quotient = options.rf_quotient;
  ropts.sleep_sets = options.symmetry || options.rf_quotient;
  ropts.mode = options.mode;
  ropts.sample = options.sample;
  ropts.trace = trace_store ? &*trace_store : nullptr;
  ropts.cancel = options.cancel;
  ropts.fault = options.fault;
  ropts.resume = options.resume;

  const std::uint64_t init_digest =
      trace_store ? witness::config_digest(lang::initial_config(traced)) : 0;

  std::mutex mu;
  // An ordered map doubles as the dedup set and the canonical output order.
  std::map<Key, ReportedRace> races;

  // Builds trace + witness for a directly observed record: the recorded
  // path to the visited state plus one appended step — the racing step
  // itself — so the witness replays through *both* access sites.
  const auto observe = [&](ReportedRace& out, const RaceRecord& rec,
                           std::uint64_t id, const Step& step) {
    out.record = rec;
    out.location = traced.locations().name(rec.loc);
    out.what = describe(traced, rec);
    out.state_dump = step.after.to_string(traced);
    out.trace.clear();
    out.witness.reset();
    if (!trace_store) return;
    // path_to is safe against concurrent inserts (see explore/explorer.cpp).
    const auto edges = trace_store->path_to(id);
    out.trace.reserve(edges.size() + 2);
    out.trace.emplace_back("init");
    witness::Witness w;
    w.kind = "race";
    w.source = "race";
    w.what = out.what;
    w.state_dump = out.state_dump;
    w.initial_digest = init_digest;
    w.steps.reserve(edges.size() + 1);
    std::vector<std::uint64_t> enc;
    for (const auto& e : edges) {
      out.trace.push_back(e.label);
      enc.clear();
      trace_store->decode_state(e.state, enc);
      w.steps.push_back({e.thread, e.label, support::hash_words(enc)});
    }
    enc.clear();
    step.after.encode_into(enc);
    out.trace.push_back(step.label);
    w.steps.push_back({step.thread, step.label, support::hash_words(enc)});
    out.witness = std::move(w);
  };

  const auto reach = engine::visit_reachable(
      traced, ropts,
      [&](const Config& cfg, std::uint64_t id,
          std::span<const Step> steps) -> bool {
        (void)cfg;
        bool keep_going = true;
        for (const Step& step : steps) {
          // Records live on the *post*-state of each enabled step, never on
          // the visited configuration: the visited-set encoding excludes
          // them, so a state reachable through both a racing and a
          // race-free step would otherwise keep whichever arrived first.
          for (const RaceRecord& raw : step.after.mem.race_records()) {
            const RaceRecord rec = canonical_pair(raw);
            if (options.stop_on_race) keep_going = false;
            std::lock_guard<std::mutex> lock(mu);
            auto [it, inserted] = races.try_emplace(key_of(rec));
            if (inserted) {
              observe(it->second, rec, id, step);
            } else if (trace_store && !it->second.witness) {
              // First inserted as a symmetry-closed sibling; now directly
              // observed — upgrade it to a witnessed report.
              observe(it->second, rec, id, step);
            }
            if (!orbit) continue;
            // Orbit closure: a permuted execution of the racy trace is a
            // real execution reporting the thread-permuted record, so the
            // full (unreduced) race set is exactly the closure of the
            // representative records under the symmetry group.  pcs stay:
            // interchangeable threads run identical code.
            const std::vector<std::string>& rep_trace = it->second.trace;
            reducer->for_each_perm([&](const engine::ThreadPerm& perm) {
              RaceRecord sibling = rec;
              sibling.prior.thread = perm[rec.prior.thread];
              sibling.current.thread = perm[rec.current.thread];
              sibling = canonical_pair(sibling);
              auto [sit, fresh] = races.try_emplace(key_of(sibling));
              if (!fresh) return;
              ReportedRace& sib = sit->second;
              sib.record = sibling;
              sib.location = traced.locations().name(sibling.loc);
              sib.what = describe(traced, sibling);
              sib.state_dump =
                  reducer->permuted(step.after, perm).to_string(traced);
              sib.trace = rep_trace;
              if (!sib.trace.empty()) {
                sib.trace.emplace_back(
                    "(racing threads are a thread permutation of the threads "
                    "this trace exercises)");
              }
              // No witness: the permuted execution was pruned by the
              // quotient.  Its orbit representative above carries one.
            });
          }
        }
        return keep_going;
      });

  RaceResult result;
  result.stats = reach.stats;
  result.stop = reach.stop;
  result.truncated = reach.truncated();
  if (!options.checkpoint_path.empty() && reach.truncated()) {
    engine::save_checkpoint(
        engine::make_checkpoint(*trace_store, reach.stats, reach.stop,
                                options.por, options.symmetry,
                                options.rf_quotient),
        options.checkpoint_path);
  }
  result.races.reserve(races.size());
  for (auto& [key, r] : races) result.races.push_back(std::move(r));
  return result;
}

}  // namespace rc11::race
