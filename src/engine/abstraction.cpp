#include "engine/abstraction.hpp"

#include <algorithm>
#include <cstring>

#include "support/diagnostics.hpp"

namespace rc11::engine {

bool key_is_identity(const AbstractKey& key) {
  if (key.perms.empty()) return true;
  const ThreadPerm& perm = key.perms.front();
  for (std::size_t t = 0; t < perm.size(); ++t) {
    if (perm[t] != t) return false;
  }
  return true;
}

std::uint64_t mask_to_abstract(std::uint64_t mask, const AbstractKey& key) {
  if (key.perms.empty()) return mask;
  return SymmetryReducer::mask_to_canonical(mask, key.perms);
}

std::uint64_t mask_from_abstract(std::uint64_t mask, const AbstractKey& key) {
  if (key.perms.empty()) return mask;
  return SymmetryReducer::mask_from_canonical(mask, key.perms.front());
}

namespace {

/// The identity abstraction: key == concrete canonical encoding.
class ConcreteAbstraction final : public StateAbstraction {
 public:
  [[nodiscard]] Kind kind() const noexcept override { return Kind::Concrete; }
  [[nodiscard]] bool nontrivial() const noexcept override { return false; }

  void key(const Config& cfg, AbstractKey& out) const override {
    out.encoding.clear();
    out.perms.clear();
    out.complete = true;
    cfg.encode_into(out.encoding);
  }

  [[nodiscard]] std::unique_ptr<StateAbstraction> clone() const override {
    return std::make_unique<ConcreteAbstraction>();
  }
};

/// PR 7's thread-permutation orbit quotient, wrapped.  The reducer's
/// canonicalisation scratch makes instances worker-local (see clone()).
class SymmetryAbstraction final : public StateAbstraction {
 public:
  explicit SymmetryAbstraction(const System& sys) : sys_(&sys), reducer_(sys) {}

  [[nodiscard]] Kind kind() const noexcept override { return Kind::Symmetry; }
  [[nodiscard]] bool nontrivial() const noexcept override {
    return reducer_.symmetric();
  }

  void key(const Config& cfg, AbstractKey& out) const override {
    reducer_.canonicalize(cfg, canon_);
    // Swap instead of copy: both buffers keep their heap capacity and
    // ping-pong between the scratch and the caller's key on the hot path.
    out.encoding.swap(canon_.encoding);
    out.perms.swap(canon_.perms);
    out.complete = canon_.complete;
  }

  [[nodiscard]] std::unique_ptr<StateAbstraction> clone() const override {
    return std::make_unique<SymmetryAbstraction>(*sys_);
  }

 private:
  const System* sys_;
  SymmetryReducer reducer_;
  mutable SymmetryReducer::Canonical canon_;
};

/// The execution-graph quotient (see the header comment).  Construction
/// runs one backward data-flow pass per thread over the flat CFG:
///
///   access[t][pc]  — the locations thread t can still touch from pc (its
///                    viewfront entries for them constrain enabled steps);
///   exports[t][pc] — whether t can still reach a view-exporting
///                    instruction (releasing store, RMW, object method),
///                    each of which snapshots t's whole viewfront row into
///                    a modification view the quotient keeps.
///
/// Both are reachability properties, so they only shrink along transitions
/// — the monotonicity the bisimulation argument needs.
class RfQuotientAbstraction final : public StateAbstraction {
 public:
  RfQuotientAbstraction(const System& sys, const RfPins& pins)
      : sys_(&sys),
        num_threads_(sys.num_threads()),
        num_locs_(static_cast<lang::LocId>(sys.locations().size())) {
    access_.resize(num_threads_);
    exports_.resize(num_threads_);
    for (lang::ThreadId t = 0; t < num_threads_; ++t) {
      analyze_thread(t);
    }
    for (const auto& [t, loc] : pins.entries) {
      support::require(t < num_threads_ && loc < num_locs_,
                       "rf-quotient pin names thread ", t, " / location ",
                       loc, ", which this system does not have");
      // A pinned entry is live at every program point of its thread.
      auto& acc = access_[t];
      const std::size_t points = acc.size() / num_locs_;
      for (std::size_t pc = 0; pc < points; ++pc) {
        acc[pc * num_locs_ + loc] = 1;
      }
    }
  }

  [[nodiscard]] Kind kind() const noexcept override {
    return Kind::RfQuotient;
  }
  [[nodiscard]] bool nontrivial() const noexcept override { return true; }

  void key(const Config& cfg, AbstractKey& out) const override {
    out.perms.clear();
    out.complete = true;
    auto& enc = out.encoding;
    enc.clear();
    // Program state first, mirroring Config::encode_into: the keep mask
    // below is a pure function of the pcs, so any two equal keys agree on
    // which viewfront entries the projection dropped.
    for (const auto p : cfg.pc) enc.push_back(p);
    for (const auto& file : cfg.regs) {
      enc.push_back(file.size());
      for (const auto v : file) enc.push_back(static_cast<std::uint64_t>(v));
    }
    keep_.assign(static_cast<std::size_t>(num_threads_) * num_locs_, 0);
    for (lang::ThreadId t = 0; t < num_threads_; ++t) {
      const std::size_t points = exports_[t].size();
      const std::size_t pc =
          std::min<std::size_t>(cfg.pc[t], points - 1);
      std::uint8_t* row = keep_.data() + static_cast<std::size_t>(t) * num_locs_;
      if (exports_[t][pc] != 0) {
        // The thread can still snapshot its whole view row into a kept
        // modification view; every entry stays observable.
        std::memset(row, 1, num_locs_);
      } else {
        std::memcpy(row, access_[t].data() + pc * num_locs_, num_locs_);
      }
    }
    cfg.mem.encode_quotient(enc, keep_.data());
  }

  [[nodiscard]] std::unique_ptr<StateAbstraction> clone() const override {
    return std::make_unique<RfQuotientAbstraction>(*this);
  }

 private:
  void analyze_thread(lang::ThreadId t) {
    const auto& code = sys_->code(t);
    const std::size_t n = code.size();
    auto& acc = access_[t];
    auto& exp = exports_[t];
    acc.assign((n + 1) * num_locs_, 0);  // index n = terminated
    exp.assign(n + 1, 0);
    // Backward fixpoint over the flat CFG (Branch → {pc+1, target}, Jump →
    // {target}, everything else → {pc+1}; the terminal point has no
    // successors).  Loops make a single pass insufficient; iterate to a
    // fixpoint — thread code is litmus-sized, so this is cheap.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t pc = n; pc-- > 0;) {
        std::uint8_t want_export = exp[pc];
        std::uint8_t* row = acc.data() + pc * num_locs_;
        const auto flow = [&](std::size_t succ) {
          want_export |= exp[succ];
          const std::uint8_t* srow = acc.data() + succ * num_locs_;
          for (lang::LocId l = 0; l < num_locs_; ++l) {
            if (srow[l] != 0 && row[l] == 0) {
              row[l] = 1;
              changed = true;
            }
          }
        };
        const lang::Instr& in = code[pc];
        switch (in.kind) {
          case lang::IKind::Jump:
            flow(in.target);
            break;
          case lang::IKind::Branch:
            flow(pc + 1);
            flow(in.target);
            break;
          default:
            flow(pc + 1);
            break;
        }
        switch (in.kind) {
          case lang::IKind::Load:
            if (row[in.loc] == 0) {
              row[in.loc] = 1;
              changed = true;
            }
            break;
          case lang::IKind::Store:
            if (row[in.loc] == 0) {
              row[in.loc] = 1;
              changed = true;
            }
            // Only a releasing store snapshots a *kept* modification view;
            // relaxed and non-atomic stores produce dead mviews.
            if (in.order == memsem::MemOrder::Release) want_export = 1;
            break;
          case lang::IKind::Cas:
          case lang::IKind::Fai:
          case lang::IKind::LockAcquire:
          case lang::IKind::LockRelease:
          case lang::IKind::Push:
          case lang::IKind::Pop:
            // RMWs are always releasing; object methods attach their view
            // to object-location operations, whose mviews are always kept.
            if (row[in.loc] == 0) {
              row[in.loc] = 1;
              changed = true;
            }
            want_export = 1;
            break;
          case lang::IKind::Assign:
          case lang::IKind::Branch:
          case lang::IKind::Jump:
            break;
        }
        if (want_export != exp[pc]) {
          exp[pc] = want_export;
          changed = true;
        }
      }
    }
  }

  const System* sys_;
  lang::ThreadId num_threads_;
  lang::LocId num_locs_;
  /// Per thread: (code size + 1) rows of num_locs bytes.
  std::vector<std::vector<std::uint8_t>> access_;
  /// Per thread: (code size + 1) bytes.
  std::vector<std::vector<std::uint8_t>> exports_;
  mutable std::vector<std::uint8_t> keep_;  ///< per-state scratch
};

}  // namespace

std::unique_ptr<StateAbstraction> make_concrete_abstraction() {
  return std::make_unique<ConcreteAbstraction>();
}

std::unique_ptr<StateAbstraction> make_symmetry_abstraction(const System& sys) {
  return std::make_unique<SymmetryAbstraction>(sys);
}

std::unique_ptr<StateAbstraction> make_rf_quotient_abstraction(
    const System& sys, const RfPins& pins) {
  return std::make_unique<RfQuotientAbstraction>(sys, pins);
}

}  // namespace rc11::engine
