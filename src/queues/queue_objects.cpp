#include "queues/queue_objects.hpp"

#include "memsem/types.hpp"
#include "support/diagnostics.hpp"

namespace rc11::queues {

using lang::c;
using memsem::Component;
using memsem::kQueueEmpty;

// --- abstract queue -----------------------------------------------------------

void AbstractQueue::declare(System& sys) { q_ = sys.library_queue("q"); }

void AbstractQueue::emit_enqueue(ThreadBuilder& tb, Expr value, bool releasing) {
  if (releasing) {
    tb.enqueue_rel(q_, std::move(value), "q.enqR");
  } else {
    tb.enqueue(q_, std::move(value), "q.enq");
  }
}

void AbstractQueue::emit_dequeue(ThreadBuilder& tb, Reg dst, bool acquiring) {
  if (acquiring) {
    tb.dequeue_acq(dst, q_, "r <- q.deqA()");
  } else {
    tb.dequeue(dst, q_, "r <- q.deq()");
  }
}

// --- locked ring queue -----------------------------------------------------------

void LockedRingQueue::declare(System& sys) {
  support::require(capacity_ >= 1 && capacity_ <= 8,
                   "LockedRingQueue capacity must be in [1, 8]");
  regs_.reset();
  lk_ = sys.library_var("qlk", 0);
  hd_ = sys.library_var("qhd", 0);
  tl_ = sys.library_var("qtl", 0);
  slots_.clear();
  for (unsigned i = 0; i < capacity_; ++i) {
    slots_.push_back(sys.library_var("qslot" + std::to_string(i), 0));
  }
}

LockedRingQueue::ThreadRegs& LockedRingQueue::regs_for(ThreadBuilder& tb) {
  return regs_.get(tb, [](ThreadBuilder& b) {
    return ThreadRegs{b.reg("lrq_loc", 0, Component::Library),
                      b.reg("lrq_hd", 0, Component::Library),
                      b.reg("lrq_tl", 0, Component::Library)};
  });
}

void LockedRingQueue::emit_lock(ThreadBuilder& tb) {
  auto& r = regs_for(tb);
  tb.do_until([&] { tb.cas(r.loc, lk_, c(0), c(1), "loc <- CAS(qlk, 0, 1)"); },
              Expr{r.loc});
}

void LockedRingQueue::emit_unlock(ThreadBuilder& tb) {
  if (releasing_unlock_) {
    tb.store_rel(lk_, c(0), "qlk :=R 0");
  } else {
    tb.store(lk_, c(0), "qlk := 0 (BROKEN: relaxed)");
  }
}

void LockedRingQueue::emit_enqueue(ThreadBuilder& tb, Expr value,
                                   bool /*releasing*/) {
  auto& r = regs_for(tb);
  emit_lock(tb);
  tb.load(r.tail, tl_, "t <- qtl");
  // slot_{t mod K} := v, as an if-chain over the residue.
  const auto cap = static_cast<lang::Value>(slots_.size());
  std::function<void(unsigned)> chain = [&](unsigned i) {
    if (i + 1 == slots_.size()) {
      tb.store(slots_[i], value, "slot := v");
      return;
    }
    tb.if_else(
        Expr{r.tail} % c(cap) == c(static_cast<lang::Value>(i)),
        [&] { tb.store(slots_[i], value, "slot := v"); },
        [&] { chain(i + 1); });
  };
  chain(0);
  tb.store(tl_, Expr{r.tail} + c(1), "qtl := t + 1");
  emit_unlock(tb);
}

void LockedRingQueue::emit_dequeue(ThreadBuilder& tb, Reg dst,
                                   bool /*acquiring*/) {
  auto& r = regs_for(tb);
  emit_lock(tb);
  tb.load(r.head, hd_, "h <- qhd");
  tb.load(r.tail, tl_, "t <- qtl");
  const auto cap = static_cast<lang::Value>(slots_.size());
  std::function<void(unsigned)> chain = [&](unsigned i) {
    if (i + 1 == slots_.size()) {
      tb.load(dst, slots_[i], "r <- slot");
      return;
    }
    tb.if_else(
        Expr{r.head} % c(cap) == c(static_cast<lang::Value>(i)),
        [&] { tb.load(dst, slots_[i], "r <- slot"); },
        [&] { chain(i + 1); });
  };
  tb.if_else(
      Expr{r.head} == Expr{r.tail},
      [&] { tb.assign(dst, c(kQueueEmpty), "r := Empty"); },
      [&] {
        chain(0);
        tb.store(hd_, Expr{r.head} + c(1), "qhd := h + 1");
      });
  emit_unlock(tb);
}

// --- instantiation / clients ------------------------------------------------------

System instantiate(const QueueClientProgram& client, QueueObject& object) {
  return og::instantiate_object(client, object);
}

QueueClientProgram publication_client(QueueClientArtifacts* artifacts) {
  return [artifacts](System& sys, QueueObject& queue) {
    const auto d = sys.client_var("d", 0);
    auto t0 = sys.thread();
    t0.store(d, c(5), "d := 5");
    queue.emit_enqueue(t0, c(1), /*releasing=*/true);

    auto t1 = sys.thread();
    auto r1 = t1.reg("r1");
    auto r2 = t1.reg("r2");
    queue.emit_dequeue(t1, r1, /*acquiring=*/true);
    t1.load(r2, d, "r2 <- d");

    if (artifacts != nullptr) {
      artifacts->vars = {d};
      artifacts->regs = {r1, r2};
    }
  };
}

QueueClientProgram pipeline_client(unsigned count,
                                   QueueClientArtifacts* artifacts) {
  support::require(count >= 1 && count <= 4,
                   "pipeline_client supports 1..4 elements");
  return [count, artifacts](System& sys, QueueObject& queue) {
    auto t0 = sys.thread();
    for (unsigned i = 0; i < count; ++i) {
      queue.emit_enqueue(t0, c(static_cast<lang::Value>(i + 10)),
                         /*releasing=*/true);
    }
    auto t1 = sys.thread();
    if (artifacts != nullptr) artifacts->regs.clear();
    for (unsigned i = 0; i < count; ++i) {
      auto r = t1.reg("d" + std::to_string(i));
      queue.emit_dequeue(t1, r, /*acquiring=*/true);
      if (artifacts != nullptr) artifacts->regs.push_back(r);
    }
  };
}

}  // namespace rc11::queues
