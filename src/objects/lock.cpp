#include "objects/lock.hpp"

#include "support/diagnostics.hpp"

namespace rc11::objects {

using memsem::LocKind;
using memsem::OpKind;

namespace {

void check_is_lock(const MemState& mem, LocId lock) {
  RC11_REQUIRE(mem.locations().kind(lock) == LocKind::Lock,
               "lock operation on non-lock location");
}

}  // namespace

bool lock_acquire_enabled(const MemState& mem, LocId lock) {
  check_is_lock(mem, lock);
  const auto& w = mem.op(mem.last_op(lock));
  return w.kind == OpKind::Init || w.kind == OpKind::LockRelease;
}

OpId lock_acquire(MemState& mem, ThreadId t, LocId lock) {
  RC11_REQUIRE(lock_acquire_enabled(mem, lock), "acquire on a held lock");
  const OpId w = mem.last_op(lock);
  const auto version = static_cast<Value>(mem.mo(lock).size());
  // The acquire operation itself is not a synchronisation *source* (only
  // init and release are observed by later acquires), so it is not marked
  // releasing; it synchronises as a *reader* with w here.
  return mem.object_op(t, lock, OpKind::LockAcquire, version,
                       /*releasing=*/false, /*sync_with=*/w, /*cover=*/true);
}

bool lock_release_enabled(const MemState& mem, ThreadId t, LocId lock) {
  check_is_lock(mem, lock);
  const auto& w = mem.op(mem.last_op(lock));
  return w.kind == OpKind::LockAcquire && w.thread == t;
}

OpId lock_release(MemState& mem, ThreadId t, LocId lock) {
  RC11_REQUIRE(lock_release_enabled(mem, t, lock),
               "release by a thread that does not hold the lock");
  const auto version = static_cast<Value>(mem.mo(lock).size());
  return mem.object_op(t, lock, OpKind::LockRelease, version,
                       /*releasing=*/true, /*sync_with=*/std::nullopt,
                       /*cover=*/false);
}

std::optional<ThreadId> lock_holder(const MemState& mem, LocId lock) {
  check_is_lock(mem, lock);
  const auto& w = mem.op(mem.last_op(lock));
  if (w.kind == OpKind::LockAcquire) return w.thread;
  return std::nullopt;
}

Value lock_version(const MemState& mem, LocId lock) {
  check_is_lock(mem, lock);
  return mem.op(mem.last_op(lock)).value;
}

}  // namespace rc11::objects
