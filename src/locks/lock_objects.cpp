#include "locks/lock_objects.hpp"

#include "memsem/types.hpp"
#include "support/diagnostics.hpp"

namespace rc11::locks {

using lang::c;
using lang::Expr;
using memsem::Component;

// --- abstract lock -----------------------------------------------------------

void AbstractLock::declare(System& sys) { l_ = sys.library_lock("l"); }

void AbstractLock::emit_acquire(ThreadBuilder& tb, Reg dst) {
  tb.acquire(l_, dst, "l.Acquire()");
}

void AbstractLock::emit_release(ThreadBuilder& tb) {
  tb.release(l_, "l.Release()");
}

// --- sequence lock -----------------------------------------------------------

void SeqLock::declare(System& sys) {
  regs_.clear();  // a LockObject may be reused across instantiations
  glb_ = sys.library_var("glb", 0);
}

SeqLock::ThreadRegs& SeqLock::regs_for(ThreadBuilder& tb) {
  const auto t = tb.id();
  auto it = regs_.find(t);
  if (it == regs_.end()) {
    ThreadRegs regs{
        tb.reg("slk_r", 0, Component::Library),
        tb.reg("slk_loc", 0, Component::Library),
    };
    it = regs_.emplace(t, regs).first;
  }
  return it->second;
}

void SeqLock::emit_acquire(ThreadBuilder& tb, Reg dst) {
  auto& r = regs_for(tb);
  tb.do_until(
      [&] {
        tb.do_until([&] { tb.load_acq(r.r, glb_, "r <-A glb"); },
                    lang::is_even(Expr{r.r}));
        tb.cas(r.loc, glb_, Expr{r.r}, Expr{r.r} + c(1),
               "loc <- CAS(glb, r, r+1)");
      },
      Expr{r.loc});
  // Acquire() returns true — delivered through the client register, which is
  // the refinement-visible rval of Section 4.
  tb.assign(dst, c(1), "return true");
}

void SeqLock::emit_release(ThreadBuilder& tb) {
  auto& r = regs_for(tb);
  if (releasing_release_) {
    tb.store_rel(glb_, Expr{r.r} + c(2), "glb :=R r + 2");
  } else {
    tb.store(glb_, Expr{r.r} + c(2), "glb := r + 2 (BROKEN: relaxed)");
  }
}

// --- ticket lock ---------------------------------------------------------------

void TicketLock::declare(System& sys) {
  regs_.clear();
  nt_ = sys.library_var("nt", 0);
  sn_ = sys.library_var("sn", 0);
}

TicketLock::ThreadRegs& TicketLock::regs_for(ThreadBuilder& tb) {
  const auto t = tb.id();
  auto it = regs_.find(t);
  if (it == regs_.end()) {
    ThreadRegs regs{
        tb.reg("tkt_mt", 0, Component::Library),
        tb.reg("tkt_sn", 0, Component::Library),
    };
    it = regs_.emplace(t, regs).first;
  }
  return it->second;
}

void TicketLock::emit_acquire(ThreadBuilder& tb, Reg dst) {
  auto& r = regs_for(tb);
  tb.fai(r.my_ticket, nt_, "m_t <- FAI(nt)");
  tb.do_until([&] { tb.load_acq(r.serving, sn_, "s_n <-A sn"); },
              Expr{r.my_ticket} == Expr{r.serving});
  tb.assign(dst, c(1), "return true");
}

void TicketLock::emit_release(ThreadBuilder& tb) {
  auto& r = regs_for(tb);
  if (releasing_release_) {
    tb.store_rel(sn_, Expr{r.serving} + c(1), "sn :=R s_n + 1");
  } else {
    tb.store(sn_, Expr{r.serving} + c(1), "sn := s_n + 1 (BROKEN: relaxed)");
  }
}

// --- CAS spinlock ---------------------------------------------------------------

void CasSpinLock::declare(System& sys) {
  regs_.clear();
  glb_ = sys.library_var("glb", 0);
}

CasSpinLock::ThreadRegs& CasSpinLock::regs_for(ThreadBuilder& tb) {
  const auto t = tb.id();
  auto it = regs_.find(t);
  if (it == regs_.end()) {
    ThreadRegs regs{tb.reg("tas_loc", 0, Component::Library)};
    it = regs_.emplace(t, regs).first;
  }
  return it->second;
}

void CasSpinLock::emit_acquire(ThreadBuilder& tb, Reg dst) {
  auto& r = regs_for(tb);
  tb.do_until([&] { tb.cas(r.loc, glb_, c(0), c(1), "loc <- CAS(glb, 0, 1)"); },
              Expr{r.loc});
  tb.assign(dst, c(1), "return true");
}

void CasSpinLock::emit_release(ThreadBuilder& tb) {
  tb.store_rel(glb_, c(0), "glb :=R 0");
}

// --- TTAS lock --------------------------------------------------------------------

void TTASLock::declare(System& sys) {
  regs_.clear();
  glb_ = sys.library_var("glb", 0);
}

TTASLock::ThreadRegs& TTASLock::regs_for(ThreadBuilder& tb) {
  const auto t = tb.id();
  auto it = regs_.find(t);
  if (it == regs_.end()) {
    ThreadRegs regs{
        tb.reg("ttas_r", 0, Component::Library),
        tb.reg("ttas_loc", 0, Component::Library),
    };
    it = regs_.emplace(t, regs).first;
  }
  return it->second;
}

void TTASLock::emit_acquire(ThreadBuilder& tb, Reg dst) {
  auto& r = regs_for(tb);
  tb.do_until(
      [&] {
        tb.do_until([&] { tb.load_acq(r.r, glb_, "r <-A glb"); },
                    Expr{r.r} == c(0));
        tb.cas(r.loc, glb_, c(0), c(1), "loc <- CAS(glb, 0, 1)");
      },
      Expr{r.loc});
  tb.assign(dst, c(1), "return true");
}

void TTASLock::emit_release(ThreadBuilder& tb) {
  tb.store_rel(glb_, c(0), "glb :=R 0");
}

// --- instantiation ---------------------------------------------------------------

System instantiate(const ClientProgram& client, LockObject& object) {
  System sys;
  object.declare(sys);
  client(sys, object);
  return sys;
}

}  // namespace rc11::locks
