# Empty compiler generated dependencies file for bench_lemma3_rules.
# This may be replaced when dependencies are built.
