// rc11-race — command-line driver: parse a program file and check it for
// RC11 data races (conflicting accesses, at least one non-atomic, unordered
// by happens-before).
//
// Usage:
//   rc11-race [options] program.rc11
//
// Options (see tools/cli_common.hpp for the flags shared by every tool):
//   --max-states N      exploration bound (default 1000000)
//   --threads N         exploration workers (0 = hardware, default 1)
//   --workers N         crash-tolerant multi-process checking: fork N
//                       supervised worker processes (see rc11-run for the
//                       full contract).  The race set and stats are
//                       byte-identical for every N; composes with --por,
//                       --rf-quotient, budgets and --checkpoint; rejected
//                       with --symmetry, --strategy sample, --threads > 1
//                       and --resume.  A worker lost for good exits 3 with
//                       a partial report.  RC11_FAULT crash/hang/corrupt
//                       kinds fire inside the workers
//   --por               ample-set partial-order reduction; the reported race
//                       set is identical to an unreduced run's (ample steps
//                       neither synchronise nor conflict across threads)
//   --symmetry          thread-symmetry quotient + sleep-set pruning; the
//                       checker orbit-closes each race record, so the set
//                       again matches an unreduced run's
//   --rf-quotient       execution-graph quotient + sleep-set pruning; race
//                       clocks and summary cells are part of the quotient
//                       key, so the reported race set is exact without any
//                       pinning; rejected with --symmetry (v1), with
//                       --strategy sample and under the SC model
//   --strategy S        exhaustive (default), por, or sample[:N] — seeded
//                       random schedules; races found are real but the set
//                       is a lower bound, so a clean sampling run exits 3
//   --seed S            RNG seed for --strategy sample (default 0)
//   --stop-on-race      stop at the first race instead of collecting all
//   --stats             also print engine statistics
//   --json FILE         write a machine-readable summary (includes the full
//                       canonical race list, stable across --threads/--por/
//                       --symmetry/strategies)
//   --disassemble       print the compiled per-thread code first
//   --witness FILE      write the first witnessed race as a JSON witness
//                       whose final step performs the racing access (implies
//                       trace tracking; minimized before emission)
//   --replay FILE       re-execute a JSON witness against the program (with
//                       race tracking on — race witnesses replay only under
//                       the race-instrumented encoding); exit 0 iff every
//                       step replays
//   --deadline-ms MS / --mem-budget BYTES[K|M|G] resource budgets
//   --checkpoint FILE / --resume FILE  save/continue an interrupted run
//
// Exit status: 0 definitively race-free, 1 on usage/parse errors, 2 if a
// data race was found, 3 inconclusive (bound/budget/interrupt hit, or a
// clean sampling run).

#include <chrono>
#include <iostream>
#include <optional>
#include <string>

#include "cli_common.hpp"
#include "engine/checkpoint.hpp"
#include "parser/parser.hpp"
#include "race/race.hpp"
#include "witness/witness.hpp"

namespace {

int usage() {
  std::cerr << "usage: rc11-race " << rc11::cli::kCommonUsage
            << " [--disassemble] [--stop-on-race] program.rc11\n";
  return rc11::cli::kExitUsage;
}

/// One race as deterministic JSON: the canonical key fields only (location
/// and both sites), never traces or dumps — CI byte-compares these lists
/// across thread counts and reductions.
rc11::witness::Json race_json(const rc11::race::ReportedRace& r) {
  using rc11::witness::Json;
  const auto side = [](const rc11::memsem::RaceAccess& a) {
    auto o = Json::object();
    o.set("thread", Json::integer(a.thread));
    o.set("pc", Json::integer(a.pc));
    o.set("access", Json::string(rc11::race::access_name(a.cat)));
    return o;
  };
  auto o = Json::object();
  o.set("location", Json::string(r.location));
  o.set("a", side(r.record.prior));
  o.set("b", side(r.record.current));
  o.set("what", Json::string(r.what));
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rc11;

  std::string path;
  cli::CommonOptions common;
  bool disassemble = false;
  bool stop_on_race = false;

  for (int i = 1; i < argc; ++i) {
    switch (cli::parse_common_flag(argc, argv, i, common)) {
      case cli::FlagStatus::Consumed:
        continue;
      case cli::FlagStatus::Error:
        return usage();
      case cli::FlagStatus::NotMine:
        break;
    }
    const std::string arg = argv[i];
    if (arg == "--disassemble") {
      disassemble = true;
    } else if (arg == "--stop-on-race") {
      stop_on_race = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  if (const std::string err = cli::resolve_strategy(common); !err.empty()) {
    std::cerr << "rc11-race: " << err << "\n";
    return cli::kExitUsage;
  }

  try {
    auto program = parser::parse_file(path);
    // Race witnesses digest the race-instrumented encoding, so the system
    // the CLI replays/minimizes against must carry the flag too.
    {
      auto sem = program.sys.options();
      sem.race_detection = true;
      program.sys.set_options(sem);
    }

    if (!common.replay_path.empty()) {
      return cli::run_replay(program.sys, common);
    }

    if (disassemble) {
      std::cout << program.sys.disassemble() << "\n";
    }

    std::optional<engine::Checkpoint> resume;
    if (!common.resume_path.empty()) {
      resume = engine::load_checkpoint(common.resume_path);
      std::cout << "resuming from " << common.resume_path << " ("
                << resume->states.size() << " state(s), stopped: "
                << engine::to_string(resume->stop) << ")\n";
    }

    race::RaceOptions opts;
    opts.max_states = common.max_states;
    opts.num_threads = common.num_threads;
    opts.por = common.por;
    opts.symmetry = common.symmetry;
    opts.rf_quotient = common.rf_quotient;
    opts.mode = common.mode;
    opts.sample = common.sample;
    opts.stop_on_race = stop_on_race;
    opts.track_traces = !common.witness_path.empty();
    opts.max_visited_bytes = common.max_visited_bytes;
    opts.deadline_ms = common.deadline_ms;
    opts.cancel = cli::install_signal_cancel();
    opts.fault = engine::FaultPlan::from_env();
    opts.resume = resume ? &*resume : nullptr;
    opts.checkpoint_path = common.checkpoint_path;
    opts.workers = common.workers;

    const auto t0 = std::chrono::steady_clock::now();
    const auto result = race::check(program.sys, opts);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::cout << "states:      " << result.stats.states << "\n"
              << "transitions: " << result.stats.transitions << "\n"
              << "races:       " << result.races.size() << "\n";
    if (common.stats) {
      cli::print_stats(result.stats, common.por, common.symmetry,
                       common.rf_quotient, wall_s);
      if (common.workers > 0) cli::print_dist_stats(result.dist);
    }
    if (result.truncated) {
      std::cout << "WARNING: exploration stopped early — "
                << cli::describe_stop(result.stop)
                << "; the race set is a lower bound\n";
      if (!common.checkpoint_path.empty()) {
        std::cout << "checkpoint written to " << common.checkpoint_path
                  << " (continue with --resume)\n";
      }
    }

    for (const auto& r : result.races) {
      std::cout << "\nRACE: " << r.what << "\n";
      for (const auto& step : r.trace) {
        std::cout << "  " << step << "\n";
      }
    }

    if (!common.json_path.empty()) {
      auto summary = witness::Json::object();
      summary.set("tool", witness::Json::string("rc11-race"));
      summary.set("program", witness::Json::string(path));
      summary.set("strategy",
                  witness::Json::string(engine::to_string(common.mode)));
      if (common.mode == engine::Strategy::Sample) {
        summary.set("seed",
                    witness::Json::integer(
                        static_cast<std::int64_t>(common.sample.seed)));
      }
      summary.set("truncated", witness::Json::boolean(result.truncated));
      summary.set("stop",
                  witness::Json::string(engine::to_string(result.stop)));
      auto races = witness::Json::array();
      for (const auto& r : result.races) races.push(race_json(r));
      summary.set("races", std::move(races));
      summary.set("stats", cli::stats_json(result.stats));
      cli::write_json_summary(summary, common.json_path);
    }

    if (result.racy()) {
      if (!common.witness_path.empty()) {
        const race::ReportedRace* witnessed = nullptr;
        for (const auto& r : result.races) {
          if (r.witness) {
            witnessed = &r;
            break;
          }
        }
        if (witnessed) {
          cli::write_witness(program.sys, *witnessed->witness,
                             common.witness_path);
        } else {
          std::cout << "no witness recorded (trace tracking was off)\n";
        }
      }
      return cli::kExitFail;
    }
    if (!common.witness_path.empty()) {
      std::cout << "no race found; " << common.witness_path
                << " not written\n";
    }
    // A clean sampling run is a lower bound, never a race-freedom proof.
    const bool definitive =
        !result.truncated && common.mode != engine::Strategy::Sample;
    return definitive ? cli::kExitOk : cli::kExitInconclusive;
  } catch (const std::exception& e) {
    std::cerr << "rc11-race: " << e.what() << "\n";
    return cli::kExitUsage;
  }
}
