// quickstart — build a weak-memory program with the public API, explore every
// behaviour the RC11 RAR semantics allows, and query the outcome set.
//
//   $ ./quickstart
//
// The program is the classic message-passing shape: with a releasing flag
// write and an acquiring flag read, seeing the flag implies seeing the data.

#include <iostream>

#include "explore/explorer.hpp"
#include "lang/system.hpp"

int main() {
  using namespace rc11;
  using lang::c;

  // 1. Declare the system: shared variables (with mandatory initial values)
  //    and threads.
  lang::System sys;
  const auto data = sys.client_var("data", 0);
  const auto flag = sys.client_var("flag", 0);

  auto producer = sys.thread();
  producer.store(data, c(42), "data := 42");          // relaxed write
  producer.store_rel(flag, c(1), "flag :=R 1");       // releasing write

  auto consumer = sys.thread();
  const auto r_flag = consumer.reg("r_flag");
  const auto r_data = consumer.reg("r_data");
  consumer.load_acq(r_flag, flag, "r_flag <-A flag");  // acquiring read
  consumer.load(r_data, data, "r_data <- data");       // relaxed read

  std::cout << "Program:\n" << sys.disassemble() << "\n";

  // 2. Explore every reachable configuration.
  const auto result = explore::explore(sys);
  std::cout << "Explored " << result.stats.states << " states, "
            << result.stats.transitions << " transitions, "
            << result.stats.finals << " final states.\n\n";

  // 3. Query the outcome set.
  const auto outcomes =
      explore::final_register_values(sys, result, {r_flag, r_data});
  std::cout << "Reachable (r_flag, r_data) outcomes:\n";
  for (const auto& o : outcomes) {
    std::cout << "  r_flag = " << o[0] << ", r_data = " << o[1] << "\n";
  }

  const bool stale_forbidden =
      !explore::outcome_reachable(sys, result, {r_flag, r_data}, {1, 0});
  std::cout << "\nStale read (flag seen, data missed) is "
            << (stale_forbidden ? "FORBIDDEN" : "ALLOWED")
            << " — release/acquire message passing "
            << (stale_forbidden ? "works" : "failed") << ".\n";
  return stale_forbidden ? 0 : 1;
}
