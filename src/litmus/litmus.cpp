#include "litmus/litmus.hpp"

#include <algorithm>

#include "explore/explorer.hpp"
#include "memsem/types.hpp"
#include "support/diagnostics.hpp"

namespace rc11::litmus {

using lang::c;
using lang::Expr;
using memsem::kStackEmpty;

namespace {

std::vector<std::vector<Value>> sorted(std::vector<std::vector<Value>> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

LitmusTest mp_release_acquire() {
  LitmusTest t;
  t.name = "MP+rel+acq";
  t.description = "message passing with releasing flag write / acquiring read";
  auto d = t.sys.client_var("d", 0);
  auto f = t.sys.client_var("f", 0);
  auto t1 = t.sys.thread();
  t1.store(d, c(5), "d := 5");
  t1.store_rel(f, c(1), "f :=R 1");
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  auto r2 = t2.reg("r2");
  t2.load_acq(r1, f, "r1 <-A f");
  t2.load(r2, d, "r2 <- d");
  t.observed = {r1, r2};
  t.allowed = sorted({{0, 0}, {0, 5}, {1, 5}});
  return t;
}

LitmusTest mp_relaxed() {
  LitmusTest t;
  t.name = "MP+rlx";
  t.description = "message passing with relaxed accesses: stale read allowed";
  auto d = t.sys.client_var("d", 0);
  auto f = t.sys.client_var("f", 0);
  auto t1 = t.sys.thread();
  t1.store(d, c(5), "d := 5");
  t1.store(f, c(1), "f := 1");
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  auto r2 = t2.reg("r2");
  t2.load(r1, f, "r1 <- f");
  t2.load(r2, d, "r2 <- d");
  t.observed = {r1, r2};
  t.allowed = sorted({{0, 0}, {0, 5}, {1, 0}, {1, 5}});
  return t;
}

LitmusTest sb_release_acquire() {
  LitmusTest t;
  t.name = "SB+rel+acq";
  t.description = "store buffering: r1 = r2 = 0 allowed even with RA";
  auto x = t.sys.client_var("x", 0);
  auto y = t.sys.client_var("y", 0);
  auto t1 = t.sys.thread();
  auto r1 = t1.reg("r1");
  t1.store_rel(x, c(1), "x :=R 1");
  t1.load_acq(r1, y, "r1 <-A y");
  auto t2 = t.sys.thread();
  auto r2 = t2.reg("r2");
  t2.store_rel(y, c(1), "y :=R 1");
  t2.load_acq(r2, x, "r2 <-A x");
  t.observed = {r1, r2};
  t.allowed = sorted({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  return t;
}

LitmusTest lb_relaxed() {
  LitmusTest t;
  t.name = "LB+rlx";
  t.description = "load buffering: RC11 RAR forbids the (1,1) cycle";
  auto x = t.sys.client_var("x", 0);
  auto y = t.sys.client_var("y", 0);
  auto t1 = t.sys.thread();
  auto r1 = t1.reg("r1");
  t1.load(r1, x, "r1 <- x");
  t1.store(y, c(1), "y := 1");
  auto t2 = t.sys.thread();
  auto r2 = t2.reg("r2");
  t2.load(r2, y, "r2 <- y");
  t2.store(x, c(1), "x := 1");
  t.observed = {r1, r2};
  t.allowed = sorted({{0, 0}, {0, 1}, {1, 0}});
  return t;
}

LitmusTest corr() {
  LitmusTest t;
  t.name = "CoRR";
  t.description = "read-read coherence: no reading against modification order";
  auto x = t.sys.client_var("x", 0);
  auto t1 = t.sys.thread();
  t1.store(x, c(1), "x := 1");
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  auto r2 = t2.reg("r2");
  t2.load(r1, x, "r1 <- x");
  t2.load(r2, x, "r2 <- x");
  t.observed = {r1, r2};
  t.allowed = sorted({{0, 0}, {0, 1}, {1, 1}});
  return t;
}

LitmusTest coww_reads() {
  LitmusTest t;
  t.name = "CoWW+reads";
  t.description = "write-write coherence: reader sees a mo-monotone pair";
  auto x = t.sys.client_var("x", 0);
  auto t1 = t.sys.thread();
  t1.store(x, c(1), "x := 1");
  t1.store(x, c(2), "x := 2");
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  auto r2 = t2.reg("r2");
  t2.load(r1, x, "r1 <- x");
  t2.load(r2, x, "r2 <- x");
  t.observed = {r1, r2};
  t.allowed = sorted({{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}});
  return t;
}

LitmusTest iriw_release_acquire() {
  LitmusTest t;
  t.name = "IRIW+rel+acq";
  t.description = "independent reads of independent writes may disagree under RA";
  auto x = t.sys.client_var("x", 0);
  auto y = t.sys.client_var("y", 0);
  auto w1 = t.sys.thread();
  w1.store_rel(x, c(1), "x :=R 1");
  auto w2 = t.sys.thread();
  w2.store_rel(y, c(1), "y :=R 1");
  auto rdr1 = t.sys.thread();
  auto r1 = rdr1.reg("r1");
  auto r2 = rdr1.reg("r2");
  rdr1.load_acq(r1, x, "r1 <-A x");
  rdr1.load_acq(r2, y, "r2 <-A y");
  auto rdr2 = t.sys.thread();
  auto r3 = rdr2.reg("r3");
  auto r4 = rdr2.reg("r4");
  rdr2.load_acq(r3, y, "r3 <-A y");
  rdr2.load_acq(r4, x, "r4 <-A x");
  t.observed = {r1, r2, r3, r4};
  // Every combination is allowed under RA, including the SC-violating
  // disagreement (1,0,1,0).
  std::vector<std::vector<Value>> all;
  for (Value a = 0; a <= 1; ++a)
    for (Value b = 0; b <= 1; ++b)
      for (Value cc = 0; cc <= 1; ++cc)
        for (Value d = 0; d <= 1; ++d) all.push_back({a, b, cc, d});
  t.allowed = sorted(std::move(all));
  return t;
}

LitmusTest cas_agreement() {
  LitmusTest t;
  t.name = "CAS-agreement";
  t.description = "two competing CAS(x,0,_): exactly one succeeds";
  auto x = t.sys.client_var("x", 0);
  auto t1 = t.sys.thread();
  auto r1 = t1.reg("r1");
  t1.cas(r1, x, c(0), c(1), "r1 <- CAS(x,0,1)");
  auto t2 = t.sys.thread();
  auto r2 = t2.reg("r2");
  t2.cas(r2, x, c(0), c(2), "r2 <- CAS(x,0,2)");
  t.observed = {r1, r2};
  t.allowed = sorted({{1, 0}, {0, 1}});
  return t;
}

LitmusTest fai_tickets() {
  LitmusTest t;
  t.name = "FAI-tickets";
  t.description = "two FAI(x) return distinct consecutive values";
  auto x = t.sys.client_var("x", 0);
  auto t1 = t.sys.thread();
  auto r1 = t1.reg("r1");
  t1.fai(r1, x, "r1 <- FAI(x)");
  auto t2 = t.sys.thread();
  auto r2 = t2.reg("r2");
  t2.fai(r2, x, "r2 <- FAI(x)");
  t.observed = {r1, r2};
  t.allowed = sorted({{0, 1}, {1, 0}});
  return t;
}

LitmusTest two_writers() {
  LitmusTest t;
  t.name = "2W+reads";
  t.description = "two writers to one variable: reader stays mo-monotone";
  auto x = t.sys.client_var("x", 0);
  auto t1 = t.sys.thread();
  t1.store(x, c(1), "x := 1");
  auto t2 = t.sys.thread();
  t2.store(x, c(2), "x := 2");
  auto t3 = t.sys.thread();
  auto r1 = t3.reg("r1");
  auto r2 = t3.reg("r2");
  t3.load(r1, x, "r1 <- x");
  t3.load(r2, x, "r2 <- x");
  t.observed = {r1, r2};
  // Monotone pairs under mo [1,2] or [2,1]; (1,0) and (2,0) are forbidden.
  t.allowed = sorted({{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 1}, {2, 2}});
  return t;
}

namespace {

/// The client of Figures 1 and 2: T1 writes d then pushes the message;
/// T2 pops until it sees the message, then reads d.
LitmusTest stack_mp(bool synchronising) {
  LitmusTest t;
  t.name = synchronising ? "Fig2-stack-MP+sync" : "Fig1-stack-MP+rlx";
  t.description = synchronising
                      ? "publication via synchronising stack (pushR/popA)"
                      : "unsynchronised message passing via relaxed stack";
  auto d = t.sys.client_var("d", 0);
  auto s = t.sys.library_stack("s");
  auto t1 = t.sys.thread();
  t1.store(d, c(5), "d := 5");
  if (synchronising) {
    t1.push_rel(s, c(1), "s.pushR(1)");
  } else {
    t1.push(s, c(1), "s.push(1)");
  }
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  auto r2 = t2.reg("r2");
  t2.do_until(
      [&] {
        if (synchronising) {
          t2.pop_acq(r1, s, "r1 <- s.popA()");
        } else {
          t2.pop(r1, s, "r1 <- s.pop()");
        }
      },
      lang::Expr{r1} == c(1));
  t2.load(r2, d, "r2 <- d");
  t.observed = {r1, r2};
  t.allowed = synchronising ? sorted({{1, 5}})
                            : sorted({{1, 0}, {1, 5}});
  return t;
}

}  // namespace

LitmusTest fig1_stack_mp_relaxed() { return stack_mp(false); }
LitmusTest fig2_stack_mp_sync() { return stack_mp(true); }

namespace {

CausalityTest wrc(bool annotated) {
  CausalityTest t;
  t.name = annotated ? "WRC+rel+acq" : "WRC+rlx";
  t.description = annotated
                      ? "write-read causality: the RA chain publishes x"
                      : "write-read causality: relaxed chain leaks stale x";
  auto x = t.sys.client_var("x", 0);
  auto y = t.sys.client_var("y", 0);
  auto t1 = t.sys.thread();
  if (annotated) {
    t1.store_rel(x, c(1), "x :=R 1");
  } else {
    t1.store(x, c(1), "x := 1");
  }
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  if (annotated) {
    t2.load_acq(r1, x, "r1 <-A x");
    t2.store_rel(y, c(1), "y :=R 1");
  } else {
    t2.load(r1, x, "r1 <- x");
    t2.store(y, c(1), "y := 1");
  }
  auto t3 = t.sys.thread();
  auto r2 = t3.reg("r2");
  auto r3 = t3.reg("r3");
  if (annotated) {
    t3.load_acq(r2, y, "r2 <-A y");
  } else {
    t3.load(r2, y, "r2 <- y");
  }
  t3.load(r3, x, "r3 <- x");
  t.observed = {r1, r2, r3};
  if (annotated) {
    t.must_allow = {{1, 1, 1}, {0, 0, 0}, {1, 0, 0}, {0, 1, 1}};
    // The causality violation: T2 saw x = 1 before publishing y, T3 saw the
    // publication but misses x = 1.
    t.must_forbid = {{1, 1, 0}};
  } else {
    t.must_allow = {{1, 1, 0}, {1, 1, 1}};
    t.must_forbid = {};
  }
  return t;
}

}  // namespace

CausalityTest wrc_release_acquire() { return wrc(true); }
CausalityTest wrc_relaxed() { return wrc(false); }

CausalityTest isa2_release_acquire() {
  CausalityTest t;
  t.name = "ISA2+rel+acq";
  t.description = "two-hop release/acquire chain publishes x transitively";
  auto x = t.sys.client_var("x", 0);
  auto y = t.sys.client_var("y", 0);
  auto z = t.sys.client_var("z", 0);
  auto t1 = t.sys.thread();
  t1.store(x, c(1), "x := 1");
  t1.store_rel(y, c(1), "y :=R 1");
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  t2.load_acq(r1, y, "r1 <-A y");
  t2.store_rel(z, c(1), "z :=R 1");
  auto t3 = t.sys.thread();
  auto r2 = t3.reg("r2");
  auto r3 = t3.reg("r3");
  t3.load_acq(r2, z, "r2 <-A z");
  t3.load(r3, x, "r3 <- x");
  t.observed = {r1, r2, r3};
  t.must_allow = {{1, 1, 1}, {0, 0, 0}, {1, 0, 0}};
  t.must_forbid = {{1, 1, 0}};
  return t;
}

CausalityTest s_shape() {
  CausalityTest t;
  t.name = "S+rel+acq";
  t.description =
      "release/acquire edge orders the writes to x in modification order";
  auto x = t.sys.client_var("x", 0);
  auto y = t.sys.client_var("y", 0);
  auto t1 = t.sys.thread();
  t1.store(x, c(2), "x := 2");
  t1.store_rel(y, c(1), "y :=R 1");
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  auto r2 = t2.reg("r2");
  t2.load_acq(r1, y, "r1 <-A y");
  t2.store(x, c(1), "x := 1");
  t2.load(r2, x, "r2 <- x");
  t.observed = {r1, r2};
  // If T2 synchronised (r1 = 1), its write of 1 must be placed after the
  // write of 2, so re-reading x can only return 1.
  t.must_allow = {{1, 1}, {0, 1}, {0, 2}};
  t.must_forbid = {{1, 2}};
  return t;
}

std::vector<CausalityTest> all_causality_tests() {
  std::vector<CausalityTest> tests;
  tests.push_back(wrc_release_acquire());
  tests.push_back(wrc_relaxed());
  tests.push_back(isa2_release_acquire());
  tests.push_back(s_shape());
  return tests;
}

std::vector<std::vector<Value>> reachable_outcomes(const LitmusTest& test,
                                                   unsigned num_threads) {
  explore::ExploreOptions opts;
  opts.num_threads = num_threads;
  const auto result = explore::explore(test.sys, opts);
  return explore::final_register_values(test.sys, result, test.observed);
}

bool check(const LitmusTest& test, unsigned num_threads) {
  explore::ExploreOptions opts;
  opts.num_threads = num_threads;
  const auto result = explore::explore(test.sys, opts);
  if (result.truncated) return false;
  return explore::final_register_values(test.sys, result, test.observed) ==
         test.allowed;
}

std::vector<LitmusTest> all_tests() {
  std::vector<LitmusTest> tests;
  tests.push_back(mp_release_acquire());
  tests.push_back(mp_relaxed());
  tests.push_back(sb_release_acquire());
  tests.push_back(lb_relaxed());
  tests.push_back(corr());
  tests.push_back(coww_reads());
  tests.push_back(iriw_release_acquire());
  tests.push_back(cas_agreement());
  tests.push_back(fai_tickets());
  tests.push_back(two_writers());
  tests.push_back(fig1_stack_mp_relaxed());
  tests.push_back(fig2_stack_mp_sync());
  return tests;
}

RaceTest race_mp_na() {
  RaceTest t;
  t.name = "Race-MP+na+rlx";
  t.description = "non-atomic payload behind a relaxed flag: racy";
  auto d = t.sys.client_var("d", 0);
  auto f = t.sys.client_var("f", 0);
  auto t1 = t.sys.thread();
  t1.store_na(d, c(5), "d :=NA 5");
  t1.store(f, c(1), "f := 1");
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  auto r2 = t2.reg("r2");
  t2.do_until([&] { t2.load(r1, f, "r1 <- f"); }, Expr{r1} == c(1));
  t2.load_na(r2, d, "r2 <-NA d");
  t.racy = true;
  return t;
}

RaceTest race_mp_na_release() {
  RaceTest t;
  t.name = "Race-MP+na+rel+acq";
  t.description = "non-atomic payload behind a release/acquire flag: clean";
  auto d = t.sys.client_var("d", 0);
  auto f = t.sys.client_var("f", 0);
  auto t1 = t.sys.thread();
  t1.store_na(d, c(5), "d :=NA 5");
  t1.store_rel(f, c(1), "f :=R 1");
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  auto r2 = t2.reg("r2");
  t2.do_until([&] { t2.load_acq(r1, f, "r1 <-A f"); }, Expr{r1} == c(1));
  t2.load_na(r2, d, "r2 <-NA d");
  t.racy = false;
  return t;
}

namespace {

/// Both double-checked-init variants run two *identical* threads, so the
/// symmetry reduction is non-trivial on them: the cross-checks rely on
/// orbit closure of the race records.
RaceTest dcl(bool broken) {
  RaceTest t;
  t.name = broken ? "Race-DCL+broken" : "Race-DCL+cas+rel+acq";
  t.description = broken
                      ? "double-checked init with relaxed guard read: racy"
                      : "CAS-elected init + release/acquire publication: clean";
  auto data = t.sys.client_var("data", 0);
  auto guard = t.sys.client_var("guard", 0);
  auto ready = broken ? guard : t.sys.client_var("ready", 0);
  for (int i = 0; i < 2; ++i) {
    auto tb = t.sys.thread();
    auto won = tb.reg("won");
    auto r = tb.reg("r");
    auto v = tb.reg("v");
    if (broken) {
      // Relaxed read of the guard: observing 1 does NOT order this thread
      // after the initialising write, and two threads can both see 0.
      tb.load(won, guard, "won <- guard");
      tb.if_else(Expr{won} == c(0), [&] {
        tb.store_na(data, c(42), "data :=NA 42");
        tb.store_rel(guard, c(1), "guard :=R 1");
      });
      tb.load_na(v, data, "v <-NA data");
    } else {
      tb.cas(won, guard, c(0), c(1), "won <- CAS(guard,0,1)");
      tb.if_else(Expr{won} == c(1), [&] {
        tb.store_na(data, c(42), "data :=NA 42");
        tb.store_rel(ready, c(1), "ready :=R 1");
      });
      tb.do_until([&] { tb.load_acq(r, ready, "r <-A ready"); },
                  Expr{r} == c(1));
      tb.load_na(v, data, "v <-NA data");
    }
  }
  t.racy = broken;
  return t;
}

}  // namespace

RaceTest race_dcl_broken() { return dcl(true); }
RaceTest race_dcl_init() { return dcl(false); }

RaceTest race_flag_spin() {
  RaceTest t;
  t.name = "Race-flag-spin+na";
  t.description = "spin polls the flag with non-atomic reads: racy on f";
  auto d = t.sys.client_var("d", 0);
  auto f = t.sys.client_var("f", 0);
  auto t1 = t.sys.thread();
  t1.store(d, c(1), "d := 1");
  t1.store(f, c(1), "f := 1");
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  auto r2 = t2.reg("r2");
  t2.do_until([&] { t2.load_na(r1, f, "r1 <-NA f"); }, Expr{r1} == c(1));
  t2.load(r2, d, "r2 <- d");
  t.racy = true;
  return t;
}

RaceTest race_disjoint_na() {
  RaceTest t;
  t.name = "Race-disjoint+na";
  t.description = "per-thread-private non-atomic accesses: clean control";
  auto x = t.sys.client_var("x", 0);
  auto y = t.sys.client_var("y", 0);
  auto t1 = t.sys.thread();
  auto a = t1.reg("a");
  t1.store_na(x, c(1), "x :=NA 1");
  t1.load_na(a, x, "a <-NA x");
  auto t2 = t.sys.thread();
  auto b = t2.reg("b");
  t2.store_na(y, c(2), "y :=NA 2");
  t2.load_na(b, y, "b <-NA y");
  t.racy = false;
  return t;
}

RaceTest race_lock_protected() {
  RaceTest t;
  t.name = "Race-lock+na";
  t.description = "non-atomic increments under an abstract lock: clean";
  auto x = t.sys.client_var("x", 0);
  auto l = t.sys.client_lock("l");
  for (int i = 0; i < 2; ++i) {
    auto tb = t.sys.thread();
    auto r = tb.reg(i == 0 ? "r1" : "r2");
    tb.acquire(l);
    tb.load_na(r, x, "r <-NA x");
    tb.store_na(x, Expr{r} + c(1), "x :=NA r + 1");
    tb.release(l);
  }
  t.racy = false;
  return t;
}

RaceTest race_atomic_only() {
  RaceTest t;
  t.name = "Race-atomic-only";
  t.description = "all-atomic relaxed MP: weak but never racy";
  auto d = t.sys.client_var("d", 0);
  auto f = t.sys.client_var("f", 0);
  auto t1 = t.sys.thread();
  t1.store(d, c(5), "d := 5");
  t1.store(f, c(1), "f := 1");
  auto t2 = t.sys.thread();
  auto r1 = t2.reg("r1");
  auto r2 = t2.reg("r2");
  t2.load(r1, f, "r1 <- f");
  t2.load(r2, d, "r2 <- d");
  t.racy = false;
  return t;
}

std::vector<RaceTest> all_race_tests() {
  std::vector<RaceTest> tests;
  tests.push_back(race_mp_na());
  tests.push_back(race_mp_na_release());
  tests.push_back(race_dcl_broken());
  tests.push_back(race_dcl_init());
  tests.push_back(race_flag_spin());
  tests.push_back(race_disjoint_na());
  tests.push_back(race_lock_protected());
  tests.push_back(race_atomic_only());
  return tests;
}

namespace {

// Shared shape of the two compute-MP workloads; `spin` switches the consumer
// between a single acquiring load and a do-until spin on the flag.
System mp_compute_impl(unsigned work, bool spin) {
  support::require(work >= 1, "mp_compute needs work >= 1");
  System sys;
  const auto d = sys.client_var("d", 0);
  const auto f = sys.client_var("f", 0);

  auto t0 = sys.thread();
  auto v = t0.reg("v");
  t0.assign(v, c(1), "v := 1");
  for (unsigned w = 1; w < work; ++w) {
    t0.assign(v, Expr{v} + c(2), "v := v + 2");
  }
  t0.store(d, Expr{v}, "d := v");
  t0.store_rel(f, c(1), "f :=R 1");

  auto t1 = sys.thread();
  auto r1 = t1.reg("r1");
  auto r2 = t1.reg("r2");
  auto s = t1.reg("s");
  if (spin) {
    t1.do_until([&] { t1.load_acq(r1, f, "r1 <-A f"); }, Expr{r1} == c(1));
  } else {
    t1.load_acq(r1, f, "r1 <-A f");
  }
  t1.load(r2, d, "r2 <- d");
  t1.assign(s, Expr{r2} * c(2), "s := r2 * 2");
  for (unsigned w = 1; w < work; ++w) {
    t1.assign(s, Expr{s} + c(1), "s := s + 1");
  }
  return sys;
}

}  // namespace

System mp_compute(unsigned work) { return mp_compute_impl(work, false); }

System mp_spin_compute(unsigned work) { return mp_compute_impl(work, true); }

}  // namespace rc11::litmus
