// rc11lib/engine/sample.cpp
//
// The Strategy::Sample reachability driver: seeded, feedback-guided random
// schedules in the C11Tester style (see sample.hpp for the design and
// composition notes).  Episodes are strictly sequential — the guided bias
// makes every episode depend on all earlier ones, and same seed ==> same
// run, byte for byte, is the property CI enforces.

#include "engine/sample.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/reach.hpp"
#include "support/diagnostics.hpp"
#include "support/intern.hpp"

namespace rc11::engine {

const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::Exhaustive:
      return "exhaustive";
    case Strategy::Por:
      return "por";
    case Strategy::Sample:
      return "sample";
  }
  return "unknown";
}

bool parse_strategy(std::string_view text, Strategy& strategy,
                    std::uint64_t& sample_episodes) {
  if (text == "exhaustive") {
    strategy = Strategy::Exhaustive;
    return true;
  }
  if (text == "por") {
    strategy = Strategy::Por;
    return true;
  }
  if (text == "sample") {
    strategy = Strategy::Sample;
    sample_episodes = SampleOptions{}.episodes;
    return true;
  }
  constexpr std::string_view kPrefix = "sample:";
  if (text.substr(0, kPrefix.size()) == kPrefix) {
    const std::string_view digits = text.substr(kPrefix.size());
    if (digits.empty()) return false;
    std::uint64_t value = 0;
    for (const char c : digits) {
      if (c < '0' || c > '9') return false;
      if (value > (UINT64_MAX - 9) / 10) return false;  // overflow
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (value == 0) return false;
    strategy = Strategy::Sample;
    sample_episodes = value;
    return true;
  }
  return false;
}

namespace {

/// splitmix64 — hand-rolled so the draw sequence is identical on every
/// platform and standard library (std:: distributions make no such
/// guarantee, and the seed-determinism CI gate byte-compares reports).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform-enough draw in [0, n); n > 0.  The modulo bias is irrelevant
  /// for schedule sampling and keeps the draw a single deterministic op.
  std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

 private:
  std::uint64_t state_;
};

/// Numerator of the guided weight kWeightScale / (1 + hits): large enough
/// that a site needs ~a million executions before rounding to weight 0 (and
/// a floor below keeps even those drawable).
constexpr std::uint64_t kWeightScale = 1ULL << 20;

/// One contiguous run of same-thread steps in a successor buffer, the unit
/// the weighted thread draw picks between.
struct ThreadRange {
  lang::ThreadId thread = 0;
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive
};

}  // namespace

ReachResult sample_reach(const TransitionSystem& ts,
                         const ReachOptions& options,
                         const StateVisitor& visitor) {
  // No meaningful frontier to resume: the coverage set plus the RNG/bias
  // state is not a work list.  Reject loudly instead of silently producing
  // a continuation that re-samples from scratch.
  support::require(options.resume == nullptr,
                   "--resume is not supported under --strategy sample: a "
                   "sampling run has no frontier to continue from (re-run "
                   "with a fresh seed instead)");

  const System& sys = ts.system();
  ReachResult result;
  // Untraced runs keep a lock-free interned set; a trace sink replaces it
  // (resolve_traced assigns ids and records first-reach parent links, which
  // is what makes violating episodes replayable witnesses).
  support::InternedWordSet visited;
  const bool want_labels = options.want_labels || options.trace != nullptr;
  BudgetEnforcer enforcer(options.budget, options.cancel, options.fault,
                          [&]() -> std::uint64_t {
                            return options.trace ? options.trace->bytes()
                                                 : visited.bytes();
                          });
  SplitMix64 rng(options.sample.seed);
  // Guided bias: executions per (thread, pc) site, across and within
  // episodes.  Sites that keep winning the draw decay towards the weight
  // floor, so rare branches — and schedules past a spin loop — get sampled.
  std::unordered_map<std::uint64_t, std::uint64_t> hits;
  // Second guided layer: executions per (thread, pc, within-thread choice
  // index) — the reads-from / placement / CAS alternative drawn once a
  // thread won.  Kept in its own map so the thread-level bias above is
  // unchanged; the FNV fold is deterministic, and a (harmless, improbable)
  // key collision only perturbs a weight, never a verdict.
  std::unordered_map<std::uint64_t, std::uint64_t> choice_hits;
  const auto choice_site = [](lang::ThreadId thread, std::uint32_t pc,
                              std::size_t choice) noexcept {
    std::uint64_t key = 0xCBF29CE484222325ULL;
    key = (key ^ thread) * 0x100000001B3ULL;
    key = (key ^ pc) * 0x100000001B3ULL;
    key = (key ^ choice) * 0x100000001B3ULL;
    return key;
  };
  const std::uint64_t step_cap = options.sample.max_episode_steps != 0
                                     ? options.sample.max_episode_steps
                                     : kDefaultEpisodeStepCap;

  lang::StepBuffer steps;
  std::vector<std::uint64_t> scratch;
  std::vector<ThreadRange> ranges;
  std::vector<std::uint64_t> weights;
  std::uint64_t probe_clock = 0;  // steps since the last budget probe
  bool vetoed = false;

  // Interns `cfg`, returning {fresh, id-or-kNoState}.  First visits claim a
  // state from the budget (the state cap stays a distinct-state bound — the
  // coverage cap) via the caller.
  const auto intern = [&](const Config& cfg, std::uint64_t parent,
                          memsem::ThreadId thread, std::string&& label)
      -> std::pair<bool, std::uint64_t> {
    scratch.clear();
    cfg.encode_into(scratch);
    if (options.trace != nullptr) {
      const auto ins =
          options.trace->resolve_traced(scratch, parent, thread,
                                        std::move(label));
      return {ins.inserted, ins.id};
    }
    return {visited.resolve_ided(scratch).inserted,
            ShardedVisitedSet::kNoState};
  };

  for (std::uint64_t episode = 0; episode < options.sample.episodes;
       ++episode) {
    if (enforcer.probe() != StopReason::Complete || vetoed) break;
    Config cfg = ts.initial();
    auto [fresh, id] =
        intern(cfg, ShardedVisitedSet::kNoState, 0, "init");
    bool stop_run = false;
    for (std::uint64_t depth = 0; depth < step_cap; ++depth) {
      if (++probe_clock >= kBudgetCheckInterval) {
        probe_clock = 0;
        if (enforcer.probe() != StopReason::Complete) {
          stop_run = true;
          break;
        }
      }
      ts.successors_into(cfg, steps, want_labels);
      if (fresh) {
        // First visits claim a distinct state and see the visitor — the
        // same contract exhaustive drivers give, restricted to the covered
        // subgraph, so violation scanners and graph collectors work
        // unchanged.
        if (enforcer.claim() != StopReason::Complete) {
          stop_run = true;
          break;
        }
        result.stats.states += 1;
        result.stats.transitions += steps.size();
        if (steps.empty()) {
          (cfg.all_done(sys) ? result.stats.finals : result.stats.blocked) +=
              1;
        }
        if (!visitor(cfg, id, steps.steps())) {
          vetoed = true;
          break;
        }
      }
      if (steps.empty()) break;  // final or blocked: the episode is over

      // Group the buffer into per-thread runs (successors_into enumerates
      // thread by thread) and draw a thread, weighted by how rarely its
      // current site has executed; then draw uniformly within the thread —
      // lang::successors enumerates memory nondeterminism (reads-from,
      // placement, CAS outcome) as separate steps, so this second draw is
      // the reads-from choice.
      const std::span<const Step> enabled = steps.steps();
      ranges.clear();
      for (std::size_t i = 0; i < enabled.size(); ++i) {
        if (ranges.empty() || ranges.back().thread != enabled[i].thread) {
          ranges.push_back({enabled[i].thread, i, i + 1});
        } else {
          ranges.back().end = i + 1;
        }
      }
      std::size_t pick = 0;
      if (ranges.size() > 1) {
        weights.clear();
        std::uint64_t total = 0;
        for (const ThreadRange& r : ranges) {
          std::uint64_t w = 1;
          if (options.sample.guided) {
            const std::uint64_t site =
                (static_cast<std::uint64_t>(r.thread) << 32) |
                static_cast<std::uint64_t>(cfg.pc[r.thread]);
            const auto it = hits.find(site);
            const std::uint64_t seen = it == hits.end() ? 0 : it->second;
            w = kWeightScale / (1 + seen);
            if (w == 0) w = 1;  // floor: every enabled thread stays drawable
          }
          weights.push_back(w);
          total += w;
        }
        std::uint64_t r = rng.below(total);
        while (r >= weights[pick]) {
          r -= weights[pick];
          pick += 1;
        }
      }
      const ThreadRange& chosen = ranges[pick];
      const std::size_t span = chosen.end - chosen.begin;
      std::size_t si = chosen.begin;
      if (span > 1) {
        if (options.sample.guided) {
          // Rarity-weighted reads-from draw: the within-thread alternatives
          // are the memory-nondeterminism options (reads-from, placement,
          // CAS outcome) of one instruction, keyed (thread, pc, choice
          // index) in `choice_hits`.  A uniform draw keeps re-reading the
          // latest write in long mo sequences; inverse-hit-count weighting
          // pushes episodes towards the stale reads that distinguish weak
          // behaviours.  Same draw discipline as the thread draw (one
          // seeded rng.below over summed weights), so seed determinism is
          // untouched.
          weights.clear();
          std::uint64_t total = 0;
          for (std::size_t c = 0; c < span; ++c) {
            const auto it = choice_hits.find(
                choice_site(chosen.thread, cfg.pc[chosen.thread], c));
            const std::uint64_t seen =
                it == choice_hits.end() ? 0 : it->second;
            std::uint64_t w = kWeightScale / (1 + seen);
            if (w == 0) w = 1;  // floor: every alternative stays drawable
            weights.push_back(w);
            total += w;
          }
          std::uint64_t r = rng.below(total);
          std::size_t c = 0;
          while (r >= weights[c]) {
            r -= weights[c];
            c += 1;
          }
          si = chosen.begin + c;
        } else {
          si = chosen.begin + static_cast<std::size_t>(rng.below(span));
        }
      }
      if (options.sample.guided) {
        const std::uint64_t site =
            (static_cast<std::uint64_t>(chosen.thread) << 32) |
            static_cast<std::uint64_t>(cfg.pc[chosen.thread]);
        hits[site] += 1;
        choice_hits[choice_site(chosen.thread, cfg.pc[chosen.thread],
                                si - chosen.begin)] += 1;
      }
      Step& step = steps.steps()[si];
      Config after = std::move(step.after);
      std::tie(fresh, id) =
          intern(after, id, step.thread, std::move(step.label));
      cfg = std::move(after);
    }
    if (stop_run) break;
    result.stats.episodes += 1;
    if (vetoed) break;
  }

  result.stats.visited_bytes =
      options.trace ? options.trace->bytes() : visited.bytes();
  result.stop = enforcer.reason();
  if (result.stop == StopReason::Complete && !vetoed) {
    // The full episode budget ran without a verdict-forcing event: honest
    // sampling never claims completeness, so the run reports EpisodeCap
    // ("results are a lower bound").  A visitor veto stays Complete —
    // stopping was the visitor's decision, exactly as in the exhaustive
    // drivers.
    result.stop = StopReason::EpisodeCap;
  }
  return result;
}

}  // namespace rc11::engine
