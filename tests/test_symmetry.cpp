// Thread-symmetry reduction: soundness, exactness and the reduction
// headline (see engine/symmetry.hpp for the quotient construction and
// DESIGN.md for the soundness argument).
//
// The always-on tests check that --symmetry preserves everything it
// promises to preserve — final-configuration sets, litmus outcome sets,
// invariant-violation sets, outline and refinement verdicts, witness
// replayability, checkpoint round-trips — on representative systems, at one
// worker and at four, composed with POR, and that it actually reduces the
// symmetric workloads it targets.  Programs with no interchangeable threads
// must come out bit-identical to an unreduced run (the sound-no-op claim).
//
// Setting RC11_SYM_CROSSCHECK=1 in the environment widens the comparison to
// the complete corpus: every litmus test, every causality test, every case
// study, every sample program and every lock-implementation/client pairing,
// each checked for exact agreement between the quotiented and full
// explorations (this is the CI "reduction" job's configuration).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/checkpoint.hpp"
#include "explore/explorer.hpp"
#include "litmus/case_studies.hpp"
#include "litmus/litmus.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "og/catalog.hpp"
#include "og/proof_outline.hpp"
#include "parser/parser.hpp"
#include "refinement/refinement.hpp"
#include "witness/witness.hpp"

namespace {

using namespace rc11;
using engine::StopReason;
using explore::ExploreOptions;
using lang::System;

bool crosscheck_enabled() {
  const char* v = std::getenv("RC11_SYM_CROSSCHECK");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::vector<std::vector<std::uint64_t>> final_encodings(
    const explore::ExploreResult& result) {
  std::vector<std::vector<std::uint64_t>> encodings;
  encodings.reserve(result.final_configs.size());
  for (const auto& cfg : result.final_configs) {
    encodings.push_back(cfg.encode());
  }
  return encodings;
}

/// The (what, state_dump) multiset is the thread-count- and
/// reduction-independent part of a violation report (traces may differ).
std::vector<std::pair<std::string, std::string>> violation_keys(
    const explore::ExploreResult& result) {
  std::vector<std::pair<std::string, std::string>> keys;
  keys.reserve(result.violations.size());
  for (const auto& v : result.violations) {
    keys.emplace_back(v.what, v.state_dump);
  }
  return keys;
}

/// Full vs. quotiented exploration of `sys` must agree on the final-state
/// set, the blocked count and truncation, at every worker count and with
/// POR layered on top.  The quotient may never visit MORE states.
void expect_sym_exact(const System& sys, const std::string& what) {
  ExploreOptions full;
  const auto reference = explore::explore(sys, full);
  for (const bool por : {false, true}) {
    for (const unsigned workers : {1U, 4U}) {
      ExploreOptions reduced;
      reduced.symmetry = true;
      reduced.por = por;
      reduced.num_threads = workers;
      const auto r = explore::explore(sys, reduced);
      EXPECT_EQ(final_encodings(r), final_encodings(reference))
          << what << " (threads " << workers << ", por " << por
          << "): final-state sets differ";
      EXPECT_EQ(r.stats.blocked, reference.stats.blocked)
          << what << " (threads " << workers << ", por " << por
          << "): blocked counts differ";
      EXPECT_EQ(r.truncated, reference.truncated) << what;
      EXPECT_LE(r.stats.states, reference.stats.states)
          << what << ": a reduction may never visit MORE states";
    }
  }
}

double sym_reduction_factor(const System& sys, bool por) {
  ExploreOptions base;
  base.por = por;
  ExploreOptions reduced = base;
  reduced.symmetry = true;
  const auto a = explore::explore(sys, base);
  const auto b = explore::explore(sys, reduced);
  EXPECT_EQ(final_encodings(a), final_encodings(b));
  EXPECT_GT(b.stats.symmetry_hits, 0u)
      << "a symmetric workload must actually hit the quotient";
  return static_cast<double>(a.stats.states) /
         static_cast<double>(b.stats.states);
}

TEST(Symmetry, LitmusOutcomeSetsExact) {
  for (const auto& test : litmus::all_tests()) {
    expect_sym_exact(test.sys, test.name);
    // The outcome set is the litmus verdict itself: with the quotient on it
    // must still equal the allowed set exactly (finals are orbit-closed).
    ExploreOptions reduced;
    reduced.symmetry = true;
    const auto result = explore::explore(test.sys, reduced);
    EXPECT_EQ(explore::final_register_values(test.sys, result, test.observed),
              test.allowed)
        << test.name << " outcome set changed under symmetry";
  }
}

TEST(Symmetry, CaseStudiesExact) {
  expect_sym_exact(litmus::peterson_counter().sys, "peterson");
  expect_sym_exact(litmus::dekker_counter().sys, "dekker");
  expect_sym_exact(litmus::barrier_exchange().sys, "barrier");
}

TEST(Symmetry, SymmetricWorkloadsExactAndReduced) {
  // Identical worker threads are the archetype: the quotient must agree
  // with the unreduced run on everything observable and visit at least
  // |orbit|-ish fewer states (the test asserts a conservative >= 2x; the
  // >= 10x headline is asserted on the larger benchmark instances in
  // bench/bench_sym.cpp).
  locks::TicketLock ticket;
  const auto sys =
      locks::instantiate(locks::worker_client(3, 1, 2), ticket);
  expect_sym_exact(sys, "ticket worker(3,1,2)");
  EXPECT_GE(sym_reduction_factor(sys, /*por=*/false), 2.0);
  EXPECT_GE(sym_reduction_factor(sys, /*por=*/true), 2.0)
      << "symmetry must keep winning on top of POR";
}

TEST(Symmetry, NoopOnAsymmetricPrograms) {
  // No two threads of the MP litmus share code: the reducer must classify
  // the system as asymmetric and the run must come out state-for-state
  // identical to an unreduced one (sleep sets prune transitions, never
  // states).
  const auto sys = litmus::mp_release_acquire().sys;
  ExploreOptions full;
  const auto reference = explore::explore(sys, full);
  ExploreOptions reduced;
  reduced.symmetry = true;
  const auto r = explore::explore(sys, reduced);
  EXPECT_EQ(r.stats.symmetry_hits, 0u);
  EXPECT_EQ(r.stats.states, reference.stats.states);
  EXPECT_EQ(r.stats.finals, reference.stats.finals);
  EXPECT_EQ(r.stats.blocked, reference.stats.blocked);
  EXPECT_EQ(final_encodings(r), final_encodings(reference));
}

TEST(Symmetry, InvariantViolationSetsExact) {
  // Violations are compared on the (what, state_dump) multiset: the
  // explorer evaluates the invariant at every orbit member of each visited
  // representative, so the quotiented set must equal the unreduced one even
  // when the violating state is not the representative.
  locks::TicketLock ticket;
  const auto sys = locks::instantiate(locks::counter_client(2, 1), ticket);
  const explore::Invariant inv =
      [](const System& s, const lang::Config& cfg)
      -> std::optional<std::string> {
    if (!cfg.all_done(s)) return std::nullopt;
    return "final state reached";
  };

  ExploreOptions full;
  full.stop_on_violation = false;
  const auto reference = explore::explore(sys, full, inv);
  ASSERT_FALSE(reference.violations.empty());

  for (const bool por : {false, true}) {
    ExploreOptions reduced;
    reduced.symmetry = true;
    reduced.por = por;
    reduced.stop_on_violation = false;
    const auto r = explore::explore(sys, reduced, inv);
    EXPECT_EQ(violation_keys(r), violation_keys(reference)) << "por=" << por;
  }
}

TEST(Symmetry, WitnessesFromQuotientedRunsReplay) {
  // Violation traces from a quotiented run lead to the visited
  // representative — a real execution — so every witness must replay
  // step-for-step through the FULL semantics, at every worker count and
  // with POR composed.
  locks::TicketLock ticket;
  const auto sys = locks::instantiate(locks::worker_client(3, 1, 2), ticket);

  for (const unsigned workers : {1U, 4U}) {
    ExploreOptions opts;
    opts.symmetry = true;
    opts.por = true;
    opts.track_traces = true;
    opts.num_threads = workers;
    opts.stop_on_violation = false;
    const auto result = explore::explore(
        sys, opts,
        [](const System& s, const lang::Config& cfg)
            -> std::optional<std::string> {
          if (!cfg.all_done(s)) return std::nullopt;
          return "final state reached";
        });
    ASSERT_FALSE(result.violations.empty()) << "workers=" << workers;
    for (const auto& v : result.violations) {
      ASSERT_TRUE(v.witness.has_value());
      const auto r = witness::replay(sys, *v.witness);
      EXPECT_TRUE(r.ok) << "workers=" << workers << ": " << r.error;
    }
  }
}

// --- checkpoint / resume under symmetry -------------------------------------

/// A temp-file path that cleans up after itself.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Symmetry, CheckpointRoundTripPreservesVerdicts) {
  locks::TicketLock ticket;
  const auto sys = locks::instantiate(locks::worker_client(3, 1, 2), ticket);

  ExploreOptions full_opts;
  full_opts.symmetry = true;
  const auto full = explore::explore(sys, full_opts);
  ASSERT_EQ(full.stop, StopReason::Complete);
  ASSERT_GE(full.stats.states, 4u);

  TempFile ck("symmetry_roundtrip.json");
  ExploreOptions trunc_opts = full_opts;
  trunc_opts.max_states = full.stats.states / 2;
  trunc_opts.checkpoint_path = ck.path;
  const auto truncated = explore::explore(sys, trunc_opts);
  ASSERT_EQ(truncated.stop, StopReason::StateCap);

  const auto ckpt = engine::load_checkpoint(ck.path);
  EXPECT_TRUE(ckpt.symmetry) << "the checkpoint must record the setting";

  ExploreOptions resume_opts = full_opts;
  resume_opts.resume = &ckpt;
  const auto resumed = explore::explore(sys, resume_opts);
  EXPECT_EQ(resumed.stop, StopReason::Complete);
  EXPECT_EQ(resumed.stats.states, full.stats.states);
  EXPECT_EQ(resumed.stats.finals, full.stats.finals);
  EXPECT_EQ(resumed.stats.blocked, full.stats.blocked);
  EXPECT_EQ(final_encodings(resumed), final_encodings(full));

  // And the whole quotiented pipeline still agrees with an unreduced run.
  const auto unreduced = explore::explore(sys, ExploreOptions{});
  EXPECT_EQ(final_encodings(resumed), final_encodings(unreduced));
}

TEST(Symmetry, ResumeRejectsMismatchedSymmetry) {
  locks::TicketLock ticket;
  const auto sys = locks::instantiate(locks::worker_client(3, 1, 2), ticket);

  // Checkpoint written with symmetry ON, resumed with it OFF: the visited
  // set holds canonical representatives an unquotiented run cannot
  // interpret, so the engine must reject loudly rather than silently skip
  // states.
  {
    TempFile ck("symmetry_mismatch_on.json");
    ExploreOptions opts;
    opts.symmetry = true;
    opts.max_states = 16;
    opts.checkpoint_path = ck.path;
    ASSERT_EQ(explore::explore(sys, opts).stop, StopReason::StateCap);
    const auto ckpt = engine::load_checkpoint(ck.path);
    ExploreOptions resume_opts;
    resume_opts.resume = &ckpt;
    EXPECT_THROW((void)explore::explore(sys, resume_opts),
                 std::runtime_error);
  }
  // And the other direction: a plain checkpoint resumed under --symmetry.
  {
    TempFile ck("symmetry_mismatch_off.json");
    ExploreOptions opts;
    opts.max_states = 16;
    opts.checkpoint_path = ck.path;
    ASSERT_EQ(explore::explore(sys, opts).stop, StopReason::StateCap);
    const auto ckpt = engine::load_checkpoint(ck.path);
    ExploreOptions resume_opts;
    resume_opts.symmetry = true;
    resume_opts.resume = &ckpt;
    EXPECT_THROW((void)explore::explore(sys, resume_opts),
                 std::runtime_error);
  }
}

TEST(Symmetry, RejectedUnderSampling) {
  // Sampling replays concrete schedules and cannot quotient states; the
  // combination is rejected loudly (the CLIs catch it in resolve_strategy,
  // the engine backstops it for library users).
  locks::TicketLock ticket;
  const auto sys = locks::instantiate(locks::worker_client(2, 1, 2), ticket);
  ExploreOptions opts;
  opts.symmetry = true;
  opts.mode = engine::Strategy::Sample;
  opts.sample.episodes = 4;
  EXPECT_THROW((void)explore::explore(sys, opts), std::runtime_error);
}

// --- outline checking under symmetry ----------------------------------------

TEST(Symmetry, OutlineVerdictsAgree) {
  for (const bool symmetry : {false, true}) {
    og::OutlineCheckOptions opts;
    opts.symmetry = symmetry;
    {
      const auto ex = og::make_fig3();
      EXPECT_TRUE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig3 symmetry=" << symmetry;
    }
    {
      const auto ex = og::make_fig3_broken();
      EXPECT_FALSE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig3-broken symmetry=" << symmetry;
    }
    {
      const auto ex = og::make_fig7();
      EXPECT_TRUE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig7 symmetry=" << symmetry;
    }
    {
      const auto ex = og::make_fig7_broken();
      EXPECT_FALSE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig7-broken symmetry=" << symmetry;
    }
  }
}

TEST(Symmetry, OutlineObligationCountsExact) {
  // Obligations are evaluated at every orbit member, so the count — and the
  // failed-obligation set — must equal the unreduced run's exactly.
  {
    const auto ex = og::make_fig3();
    og::OutlineCheckOptions plain;
    const auto a = og::check_outline(ex.sys, ex.outline, plain);
    og::OutlineCheckOptions quotient;
    quotient.symmetry = true;
    const auto b = og::check_outline(ex.sys, ex.outline, quotient);
    EXPECT_EQ(b.obligations_checked, a.obligations_checked);
  }
  {
    const auto ex = og::make_fig3_broken();
    og::OutlineCheckOptions plain;
    plain.stop_at_first_failure = false;
    auto quotient = plain;
    quotient.symmetry = true;
    const auto a = og::check_outline(ex.sys, ex.outline, plain);
    const auto b = og::check_outline(ex.sys, ex.outline, quotient);
    EXPECT_EQ(b.obligations_checked, a.obligations_checked);
    EXPECT_EQ(b.failures.size(), a.failures.size());
  }
}

// --- refinement product quotient --------------------------------------------

TEST(Symmetry, RefinementTraceInclusionAgrees) {
  locks::AbstractLock abstract;
  locks::SeqLock good;
  locks::SeqLock broken(/*releasing_release=*/false);
  const auto abs_sys = locks::instantiate(locks::fig7_client(), abstract);
  const auto good_sys = locks::instantiate(locks::fig7_client(), good);
  const auto broken_sys = locks::instantiate(locks::fig7_client(), broken);

  refinement::TraceInclusionOptions plain;
  refinement::TraceInclusionOptions quotient;
  quotient.symmetry = true;
  const auto good_plain =
      refinement::check_trace_inclusion(abs_sys, good_sys, plain);
  const auto good_quot =
      refinement::check_trace_inclusion(abs_sys, good_sys, quotient);
  EXPECT_TRUE(good_plain.holds);
  EXPECT_TRUE(good_quot.holds);
  EXPECT_LE(good_quot.product_nodes, good_plain.product_nodes)
      << "the quotient may never grow the product";
  EXPECT_FALSE(
      refinement::check_trace_inclusion(abs_sys, broken_sys, quotient).holds)
      << "a broken implementation must still be caught under the quotient";
}

TEST(Symmetry, RefinementSymmetricClientShrinksProduct) {
  // The worker client runs identical threads (the most-general client does
  // not — it writes unique per-thread values), so both systems are
  // symmetric with equal classes and the product quotient actually fires.
  locks::AbstractLock abstract;
  locks::TicketLock ticket;
  const auto abs_sys =
      locks::instantiate(locks::worker_client(2, 1, 2), abstract);
  const auto conc_sys =
      locks::instantiate(locks::worker_client(2, 1, 2), ticket);

  refinement::TraceInclusionOptions plain;
  refinement::TraceInclusionOptions quotient;
  quotient.symmetry = true;
  const auto a = refinement::check_trace_inclusion(abs_sys, conc_sys, plain);
  const auto b =
      refinement::check_trace_inclusion(abs_sys, conc_sys, quotient);
  EXPECT_EQ(b.holds, a.holds) << "verdicts must not change";
  EXPECT_LT(b.product_nodes, a.product_nodes)
      << "a symmetric client must actually shrink the product";
}

// --- the full-corpus cross-check (RC11_SYM_CROSSCHECK=1; CI reduction job) --

TEST(SymCrosscheck, FullCorpusAgreement) {
  if (!crosscheck_enabled()) {
    GTEST_SKIP() << "set RC11_SYM_CROSSCHECK=1 to run the full corpus";
  }

  for (const auto& test : litmus::all_tests()) {
    expect_sym_exact(test.sys, "litmus " + test.name);
  }
  for (const auto& test : litmus::all_causality_tests()) {
    expect_sym_exact(test.sys, "causality " + test.name);
  }
  for (const auto& test : litmus::all_race_tests()) {
    expect_sym_exact(test.sys, "race " + test.name);
  }
  expect_sym_exact(litmus::peterson_counter().sys, "peterson");
  expect_sym_exact(litmus::dekker_counter().sys, "dekker");
  expect_sym_exact(litmus::barrier_exchange().sys, "barrier");
  for (const unsigned work : {1U, 2U, 4U}) {
    expect_sym_exact(litmus::mp_compute(work), "mp_compute");
    expect_sym_exact(litmus::mp_spin_compute(work), "mp_spin_compute");
  }

  const char* programs[] = {
      "lock_client_abstract.rc11", "lock_client_broken.rc11",
      "lock_client_seqlock.rc11",  "mp_broken_outline.rc11",
      "mp_stack.rc11",             "mp_verified.rc11",
      "sb.rc11",                   "ticket_lock.rc11",
      "mp_na_racy.rc11",           "mp_na_release.rc11",
      "dcl_broken.rc11",           "dcl_init.rc11",
      "flag_spin_racy.rc11",       "disjoint_na.rc11",
  };
  for (const char* name : programs) {
    const auto program = parser::parse_file(std::string(RC11_SRC_DIR) +
                                            "/tools/programs/" + name);
    expect_sym_exact(program.sys, name);
  }

  const std::vector<locks::ClientProgram> clients = {
      locks::fig7_client(),
      locks::mgc_client(2, 2),
      locks::counter_client(2, 1),
      locks::worker_client(2, 1, 2),
      locks::worker_client(3, 1, 2),
  };
  locks::AbstractLock abstract;
  locks::SeqLock seq;
  locks::TicketLock ticket;
  locks::CasSpinLock cas;
  locks::TTASLock ttas;
  locks::LockObject* lock_impls[] = {&abstract, &seq, &ticket, &cas, &ttas};
  for (const auto& client : clients) {
    for (auto* lock : lock_impls) {
      expect_sym_exact(locks::instantiate(client, *lock), lock->name());
    }
  }
}

}  // namespace
