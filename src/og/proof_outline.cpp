#include "og/proof_outline.hpp"

#include <atomic>
#include <deque>
#include <mutex>
#include <span>

#include "support/diagnostics.hpp"
#include "support/hash.hpp"
#include "support/intern.hpp"
#include "support/parallel.hpp"

namespace rc11::og {

using lang::Step;

ProofOutline::ProofOutline(const System& sys) {
  annotations_.resize(sys.num_threads());
  for (ThreadId t = 0; t < sys.num_threads(); ++t) {
    annotations_[t].assign(sys.code(t).size() + 1, Assertion::always());
  }
}

void ProofOutline::annotate(ThreadId t, std::uint32_t pc, Assertion a) {
  support::require(t < annotations_.size(), "annotate: thread out of range");
  support::require(pc < annotations_[t].size(),
                   "annotate: pc out of range for thread ", t);
  annotations_[t][pc] = std::move(a);
}

void ProofOutline::postcondition(ThreadId t, Assertion a) {
  annotate(t, terminal_pc(t), std::move(a));
}

const Assertion& ProofOutline::at(ThreadId t, std::uint32_t pc) const {
  const auto& anns = annotations_.at(t);
  // Control never moves past the terminal pc, but clamp defensively.
  return anns[pc < anns.size() ? pc : anns.size() - 1];
}

std::uint32_t ProofOutline::terminal_pc(ThreadId t) const {
  return static_cast<std::uint32_t>(annotations_.at(t).size() - 1);
}

namespace {

/// Visited set over canonical encodings: the shared interned representation
/// (open-addressing fingerprint table over a varint arena, exact via
/// full-encoding confirmation — support/intern.hpp).
using Visited = support::InternedWordSet;

struct TraceNode {
  std::int64_t parent = -1;
  std::string label;
};

std::vector<std::string> rebuild_trace(const std::vector<TraceNode>& nodes,
                                       std::int64_t node) {
  std::vector<std::string> labels;
  for (std::int64_t n = node; n >= 0;
       n = nodes[static_cast<std::size_t>(n)].parent) {
    labels.push_back(nodes[static_cast<std::size_t>(n)].label);
  }
  std::reverse(labels.begin(), labels.end());
  return labels;
}

/// Evaluates every outline obligation at one reachable configuration —
/// validity (global invariant + the annotation at every thread's current pc)
/// and, when enabled, interference freedom over the enabled steps (the
/// classic {A ∧ pre(S)} S {A} side condition restricted to reachable
/// states; the step's precondition holds by the validity check).  Invokes
/// `fail(obligation)` per failed obligation, stopping after the first when
/// stop_at_first_failure.  Returns the number of obligations evaluated.
/// Shared by the sequential and parallel checkers so the obligation set can
/// never diverge between them.
template <typename FailFn>
std::uint64_t evaluate_obligations(const System& sys,
                                   const ProofOutline& outline,
                                   const OutlineCheckOptions& options,
                                   const Config& cfg,
                                   std::span<const Step> steps,
                                   const FailFn& fail) {
  std::uint64_t checked = 0;
  bool failed = false;

  checked += 1;
  if (!outline.global_invariant().eval(sys, cfg)) {
    fail("global invariant " + outline.global_invariant().name());
    failed = true;
  }
  if (!(failed && options.stop_at_first_failure)) {
    for (ThreadId t = 0; t < sys.num_threads(); ++t) {
      checked += 1;
      const Assertion& ann = outline.at(t, cfg.pc[t]);
      if (!ann.eval(sys, cfg)) {
        fail(support::concat("annotation at t", t, " pc=", cfg.pc[t], ": ",
                             ann.name()));
        failed = true;
        if (options.stop_at_first_failure) break;
      }
    }
  }
  if (options.check_interference && !(failed && options.stop_at_first_failure)) {
    for (const auto& step : steps) {
      for (ThreadId t = 0; t < sys.num_threads(); ++t) {
        if (t == step.thread) continue;
        for (std::uint32_t pc = 0; pc <= outline.terminal_pc(t); ++pc) {
          const Assertion& ann = outline.at(t, pc);
          checked += 1;
          if (ann.eval(sys, cfg) && !ann.eval(sys, step.after)) {
            fail(support::concat("interference: step [", step.label,
                                 "] breaks t", t, " pc=", pc, ": ",
                                 ann.name()));
            failed = true;
            if (options.stop_at_first_failure) break;
          }
        }
        if (failed && options.stop_at_first_failure) break;
      }
      if (failed && options.stop_at_first_failure) break;
    }
  }
  return checked;
}

/// Parallel outline checking on the shared reachability driver: the state
/// space is enumerated by a worker pool over the lock-striped visited set
/// and obligations are evaluated concurrently per state.  Failures carry no
/// traces and arrive in nondeterministic order; the verdict and the set of
/// failed obligations match the sequential checker.
OutlineCheckResult check_outline_parallel(const System& sys,
                                          const ProofOutline& outline,
                                          const OutlineCheckOptions& options) {
  OutlineCheckResult result;
  std::atomic<std::uint64_t> obligations{0};
  std::atomic<bool> valid{true};
  std::mutex failures_mu;

  explore::ReachOptions ropts;
  ropts.max_states = options.max_states;
  ropts.num_threads = options.num_threads;
  ropts.want_labels = true;  // interference messages cite the step label

  const auto reach = explore::visit_reachable(
      sys, ropts,
      [&](const Config& cfg, std::span<const lang::Step> steps) -> bool {
        std::vector<std::string> local_failures;
        obligations.fetch_add(
            evaluate_obligations(sys, outline, options, cfg, steps,
                                 [&](std::string obligation) {
                                   local_failures.push_back(
                                       std::move(obligation));
                                 }),
            std::memory_order_relaxed);
        if (!local_failures.empty()) {
          valid.store(false, std::memory_order_relaxed);
          const auto dump = cfg.to_string(sys);
          std::lock_guard<std::mutex> lock(failures_mu);
          for (auto& obligation : local_failures) {
            result.failures.push_back({std::move(obligation), dump, {}});
          }
          if (options.stop_at_first_failure) return false;
        }
        return true;
      });

  result.valid = valid.load();
  result.stats = reach.stats;
  result.obligations_checked = obligations.load();
  return result;
}

}  // namespace

OutlineCheckResult check_outline(const System& sys, const ProofOutline& outline,
                                 OutlineCheckOptions options) {
  if (support::resolve_num_threads(options.num_threads) > 1 &&
      !options.track_traces) {
    return check_outline_parallel(sys, outline, options);
  }

  OutlineCheckResult result;
  Visited visited;
  struct Item {
    Config cfg;
    std::int64_t trace_node;
  };
  std::deque<Item> frontier;
  std::vector<TraceNode> trace_nodes;
  std::int64_t current_node = -1;
  lang::StepBuffer steps;
  std::vector<std::uint64_t> scratch;

  const auto fail = [&](std::string obligation, const Config& cfg) {
    result.valid = false;
    result.failures.push_back(
        {std::move(obligation), cfg.to_string(sys),
         options.track_traces ? rebuild_trace(trace_nodes, current_node)
                              : std::vector<std::string>{}});
  };

  {
    Config init = lang::initial_config(sys);
    visited.insert(init.encode());
    if (options.track_traces) trace_nodes.push_back({-1, "init"});
    frontier.push_back({std::move(init), options.track_traces ? 0 : -1});
  }

  while (!frontier.empty()) {
    if (result.stats.states >= options.max_states) break;
    if (!result.valid && options.stop_at_first_failure) break;
    Item item = std::move(frontier.back());
    frontier.pop_back();
    const Config& cfg = item.cfg;
    current_node = item.trace_node;
    result.stats.states += 1;

    lang::successors(sys, cfg, steps, /*want_labels=*/true);

    result.obligations_checked += evaluate_obligations(
        sys, outline, options, cfg, steps.steps(),
        [&](std::string obligation) { fail(std::move(obligation), cfg); });
    if (!result.valid && options.stop_at_first_failure) break;

    if (steps.empty()) {
      if (cfg.all_done(sys)) {
        result.stats.finals += 1;
      } else {
        result.stats.blocked += 1;
      }
      continue;
    }
    for (auto& step : steps.steps()) {
      result.stats.transitions += 1;
      scratch.clear();
      step.after.encode_into(scratch);
      if (visited.insert(scratch)) {
        std::int64_t node = -1;
        if (options.track_traces) {
          node = static_cast<std::int64_t>(trace_nodes.size());
          trace_nodes.push_back({item.trace_node, std::move(step.label)});
        }
        frontier.push_back({std::move(step.after), node});
      }
    }
  }

  result.stats.visited_bytes = visited.bytes();
  return result;
}

TripleCheckResult check_triple(const System& sys, const Assertion& pre,
                               const StatementFilter& filter,
                               const TriplePost& post,
                               std::uint64_t max_states) {
  TripleCheckResult result;
  Visited visited;
  std::deque<Config> frontier;
  std::uint64_t states = 0;
  lang::StepBuffer steps;
  std::vector<std::uint64_t> scratch;

  {
    Config init = lang::initial_config(sys);
    visited.insert(init.encode());
    frontier.push_back(std::move(init));
  }

  while (!frontier.empty() && states < max_states) {
    Config cfg = std::move(frontier.back());
    frontier.pop_back();
    states += 1;

    const bool pre_holds = pre.eval(sys, cfg);
    lang::successors(sys, cfg, steps, /*want_labels=*/true);
    for (auto& step : steps.steps()) {
      const Instr& in = sys.code(step.thread)[cfg.pc[step.thread]];
      if (pre_holds && filter(step.thread, in)) {
        result.instances_checked += 1;
        if (!post(sys, cfg, step.after)) {
          result.valid = false;
          result.failures.push_back(
              {support::concat("triple violated by step [", step.label, "]"),
               cfg.to_string(sys) + "-- after --\n" + step.after.to_string(sys),
               {}});
        }
      }
      scratch.clear();
      step.after.encode_into(scratch);
      if (visited.insert(scratch)) {
        frontier.push_back(std::move(step.after));
      }
    }
  }

  return result;
}

}  // namespace rc11::og
