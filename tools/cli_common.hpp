// tools/cli_common.hpp
//
// Flag parsing, exit-code conventions and output helpers shared by the three
// command-line binaries (rc11-run, rc11-verify, rc11-refine).  Every flag
// that means the same thing in more than one tool — --max-states, --threads,
// --por, --stats, --json, --witness, --replay — is parsed here exactly once,
// so the tools cannot drift apart in spelling, value handling or exit codes.

#pragma once

#include <charconv>
#include <cstddef>
#include <cstdint>
#include <string>

#include "engine/reach.hpp"
#include "engine/supervise.hpp"
#include "lang/system.hpp"
#include "witness/json.hpp"
#include "witness/witness.hpp"

namespace rc11::cli {

// Exit-code conventions, uniform across the three tools:
//   0 success (outcomes printed / outline valid / refinement holds)
//   1 usage or parse errors
//   2 definite negative verdict (invariant violation, outline invalid,
//     refinement fails, witness replay diverged)
//   3 inconclusive (a state or product bound was hit; verdicts unreliable)
inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 1;
inline constexpr int kExitFail = 2;
inline constexpr int kExitInconclusive = 3;

/// Whole-string numeric parse; rejects "abc", "8x", "" instead of aborting.
template <typename T>
[[nodiscard]] bool parse_num(const std::string& s, T& out) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

/// The flags every tool accepts, with their shared defaults.
struct CommonOptions {
  std::uint64_t max_states = 1'000'000;
  unsigned num_threads = 1;  ///< 0 = hardware concurrency
  bool por = false;          ///< ample-set partial-order reduction
  /// --symmetry: thread-symmetry quotient + sleep-set pruning.  Composes
  /// with --por, --threads, budgets and --checkpoint/--resume (the
  /// checkpoint records the setting); rejected with --strategy sample.  A
  /// sound no-op on programs with no interchangeable threads.
  bool symmetry = false;
  /// --rf-quotient: execution-graph quotient — states are keyed by their
  /// canonical reads-from/modification-order data plus per-thread progress
  /// instead of the full concrete encoding (engine/abstraction.hpp).
  /// Composes with --por, --threads, budgets and --checkpoint/--resume (the
  /// checkpoint records the setting); rejected with --symmetry (v1), with
  /// --strategy sample and under the SC model.
  bool rf_quotient = false;
  /// --strategy exhaustive|por|sample[:N]: how the engine covers the state
  /// space.  `por` above and `--strategy por` are the same setting;
  /// resolve_strategy() normalises them and rejects conflicts.
  engine::Strategy mode = engine::Strategy::Exhaustive;
  /// Sampling knobs: --strategy sample:N sets episodes, --seed S the seed.
  engine::SampleOptions sample;
  bool seed_set = false;  ///< --seed was given (only meaningful with sample)
  bool stats = false;        ///< print exploration statistics
  std::string witness_path;  ///< write first counterexample as JSON witness
  std::string replay_path;   ///< re-execute a JSON witness instead of checking
  std::string json_path;     ///< write a machine-readable run summary
  // Resource governance (engine::Budget semantics; 0 = unlimited/none).
  std::uint64_t max_visited_bytes = 0;  ///< --mem-budget BYTES[K|M|G]
  std::uint64_t deadline_ms = 0;        ///< --deadline-ms MS (wall clock)
  std::string checkpoint_path;  ///< --checkpoint FILE: save on early stop
  std::string resume_path;      ///< --resume FILE: continue a saved run
  /// --workers N: crash-tolerant multi-process checking (engine/supervise
  /// .hpp) — N forked worker processes, supervised and restarted on
  /// crash/hang/corruption.  0 (the default) stays in-process.  Verdicts and
  /// stats are byte-identical for every N; composes with --por,
  /// --rf-quotient, budgets and --checkpoint; rejected with --symmetry,
  /// --strategy sample, --threads > 1 and --resume.  A run that loses a
  /// worker for good exits 3 with a partial report (StopReason::WorkerLost).
  unsigned workers = 0;
};

/// Usage-line fragment for the shared flags (tools append their own).
inline constexpr const char* kCommonUsage =
    "[--max-states N] [--threads N] [--workers N] [--por] [--symmetry] "
    "[--rf-quotient] [--strategy exhaustive|por|sample[:N]] [--seed S] "
    "[--stats] [--json FILE] [--witness FILE] [--replay FILE] "
    "[--deadline-ms MS] [--mem-budget BYTES[K|M|G]] [--checkpoint FILE] "
    "[--resume FILE]";

/// One sound state-space reduction flag, with every cross-cutting rule the
/// CLI layer enforces about it.  The three reductions used to be parsed and
/// validated by hand-written per-flag branches that drifted as flags were
/// added; this table is now the single source of truth — parse_common_flag
/// consumes any entry's `flag`, and resolve_strategy applies the
/// `sample_conflict` and `excludes` rules uniformly.  Engine-side rules the
/// table documents but the engine enforces (with the same vocabulary):
/// flags with `checkpoint_pinned` are recorded in every checkpoint and a
/// --resume run must pass the identical setting.
struct ReductionFlag {
  const char* flag;             ///< the command-line spelling ("--por")
  bool CommonOptions::*member;  ///< the option the flag sets
  bool checkpoint_pinned;       ///< recorded in checkpoints; resume must match
  /// Error message under --strategy sample, or nullptr when the reduction
  /// composes with sampling.
  const char* sample_conflict;
  /// Spelling of a mutually exclusive reduction flag, or nullptr.  The
  /// exclusion is symmetric; one direction in the table suffices.
  const char* excludes;
};

/// The reduction-flag table: --por, --symmetry, --rf-quotient.
inline constexpr std::size_t kNumReductionFlags = 3;
extern const ReductionFlag kReductionFlags[kNumReductionFlags];

/// Byte-count parse for --mem-budget: a whole number with an optional
/// binary-unit suffix (K, M or G, case-insensitive).  Rejects overflow.
[[nodiscard]] bool parse_bytes(const std::string& s, std::uint64_t& out);

enum class FlagStatus : std::uint8_t {
  Consumed,  ///< argv[i] (plus its value, if any) was a common flag
  NotMine,   ///< not a common flag; the tool should try its own
  Error,     ///< common flag with a missing or malformed value
};

/// Tries to consume argv[i] as a common flag, advancing `i` over the flag's
/// value when it takes one.
[[nodiscard]] FlagStatus parse_common_flag(int argc, char** argv, int& i,
                                           CommonOptions& out);

/// Post-parse normalisation and conflict checking for the coverage-strategy
/// flags: unifies --por with --strategy por (either spelling sets both
/// fields) and rejects the combinations sampling cannot honour
/// (--por + --strategy sample, --seed without sampling, and
/// --checkpoint/--resume under sampling — a sampling run has no frontier).
/// Returns an error message for the user, or an empty string when the
/// options are consistent.
[[nodiscard]] std::string resolve_strategy(CommonOptions& opts);

/// Installs SIGINT/SIGTERM handlers that trip a process-wide
/// engine::CancelToken and returns that token, so a Ctrl-C drains the
/// exploration workers and the tool still emits its partial report (and a
/// --checkpoint file) before exiting with kExitInconclusive.  The handler
/// re-arms the default disposition, so a *second* signal kills the process
/// the traditional way.  Async-signal-safe: the handler only performs a
/// relaxed atomic store and a sigaction reset.
[[nodiscard]] const engine::CancelToken* install_signal_cancel();

/// Human-readable phrase for why a run stopped, with the flag to raise,
/// e.g. "the state cap was reached (raise --max-states)".
[[nodiscard]] std::string describe_stop(engine::StopReason stop);

/// The shared --replay implementation: load the witness at
/// `opts.replay_path`, re-execute it against `sys`, narrate the outcome.
/// Returns kExitOk when every step replays, kExitFail otherwise.
[[nodiscard]] int run_replay(const lang::System& sys,
                             const CommonOptions& opts);

/// The shared --stats block: peak frontier, visited-set memory, — under
/// --por — how much the reduction saved (reduced expansions and states
/// skipped by chain collapse), — under --symmetry — orbit-duplicate
/// arrivals merged, sleep-set step skips and the quotient ratio, — under
/// --rf-quotient — concrete arrivals merged into visited classes (counted
/// only when traces are recorded; 0 otherwise) and sleep-set skips, and —
/// under sampling — episodes, episode rate (when `wall_s` > 0; the tools
/// time the run) and the distinct-state coverage estimate.  Rates and
/// ratios go only to this human-readable block, never into --json: CI
/// byte-compares JSON reports for seed determinism.
void print_stats(const engine::ExploreStats& stats, bool por, bool symmetry,
                 bool rf_quotient, double wall_s = -1.0);

/// The --stats lines of a supervised (--workers) run: restarts, retried
/// batches, corrupt frames, orphaned states.  Human block only — telemetry
/// never enters --json, so a recovered run's report stays byte-identical to
/// an undisturbed one's.
void print_dist_stats(const engine::DistTelemetry& dist);

/// ExploreStats as a JSON object (states, transitions, finals, blocked, the
/// POR, symmetry/sleep and rf-merge counters when non-zero, and `episodes`
/// when sampling) for --json summaries.  Deliberately free of timing data —
/// same seed must produce a byte-identical report.
[[nodiscard]] witness::Json stats_json(const engine::ExploreStats& stats);

/// Writes a --json summary document and narrates where it went.
void write_json_summary(const witness::Json& summary, const std::string& path);

/// The shared --witness emission: minimize `w` against `sys`, save it to
/// `path` and narrate the step count.
void write_witness(const lang::System& sys, const witness::Witness& w,
                   const std::string& path);

}  // namespace rc11::cli
