// Experiment F7/L4: the Figure 7 lock-synchronisation proof outline
// (Lemma 4).  Paper shape: the outline — mutual exclusion invariant,
// version-indexed visibility assertions, covered/hidden conjuncts — is
// valid; the final registers satisfy r1 = r2 ∈ {0, 5}; a broken outline is
// rejected.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "og/catalog.hpp"

namespace {

using namespace rc11;

void BM_Fig7_Validity(benchmark::State& state) {
  for (auto _ : state) {
    auto ex = og::make_fig7();
    og::OutlineCheckOptions opts;
    opts.check_interference = false;
    const auto result = og::check_outline(ex.sys, ex.outline, opts);
    benchmark::DoNotOptimize(result.valid);
    state.counters["states"] = static_cast<double>(result.stats.states);
  }
}
BENCHMARK(BM_Fig7_Validity);

void BM_Fig7_WithInterference(benchmark::State& state) {
  for (auto _ : state) {
    auto ex = og::make_fig7();
    og::OutlineCheckOptions opts;
    opts.check_interference = true;
    const auto result = og::check_outline(ex.sys, ex.outline, opts);
    benchmark::DoNotOptimize(result.valid);
    state.counters["obligations"] =
        static_cast<double>(result.obligations_checked);
  }
}
BENCHMARK(BM_Fig7_WithInterference);

}  // namespace

int main(int argc, char** argv) {
  {
    auto ex = rc11::og::make_fig7();
    rc11::og::OutlineCheckOptions opts;
    opts.check_interference = true;
    const auto result = rc11::og::check_outline(ex.sys, ex.outline, opts);
    rc11::bench::verdict(
        "F7/L4", result.valid,
        "Fig. 7 outline (incl. Inv and interference freedom) valid over " +
            std::to_string(result.stats.states) + " states");

    const auto run = rc11::explore::explore(ex.sys);
    const auto outcomes = rc11::explore::final_register_values(
        ex.sys, run, {ex.r1, ex.r2});
    rc11::bench::verdict(
        "F7-outcomes",
        outcomes == std::vector<std::vector<rc11::lang::Value>>{{0, 0}, {5, 5}},
        "final (r1, r2) = " + rc11::bench::outcomes_to_string(outcomes) +
            " (agreement: both 0 or both 5)");

    auto broken = rc11::og::make_fig7_broken();
    const auto broken_result =
        rc11::og::check_outline(broken.sys, broken.outline);
    rc11::bench::verdict("F7-neg", !broken_result.valid,
                         "broken Fig. 7 outline rejected");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
