// rc11lib/engine/symmetry.hpp
//
// Thread-symmetry reduction for the reachability engine.
//
// The refinement checker's parameterised most-general clients — and the
// worker/counter benchmark families — are thread-symmetric by construction:
// every client thread runs the same program text over its own registers.
// Permuting such threads in a configuration yields a configuration with a
// permutation-isomorphic future, so the state space contains up to n!
// permutation-equivalent copies of every state.  This module quotients
// exploration by that group action.
//
// --- eligibility (proved, not assumed) ---------------------------------------
//
// Two threads are interchangeable iff the front end can prove their program
// text identical modulo thread id: same instruction sequence (kind, operands,
// expressions, memory order, branch targets, labels), same register file
// shape (count, component tags, initial values).  analyze() partitions the
// system's threads into maximal such classes; only classes of size >= 2
// induce any reduction.  Programs with per-thread constants (e.g. the mgc
// client's thread-unique written values) partition into singletons and the
// reduction degenerates to the identity — requesting --symmetry on them is a
// sound no-op.
//
// --- the group action --------------------------------------------------------
//
// A permutation pi acting on a configuration (P, rho, gamma):
//   * pc and register files are reindexed: (pi.cfg).pc[pi(t)] = cfg.pc[t];
//   * every memory operation's executing thread is relabelled pi(t);
//   * thread viewfronts are reindexed rows; per-operation modification views
//     are per-*location* vectors and are untouched;
//   * modification order, values, covered flags and timestamps are untouched.
// Because interchangeable threads run identical code, the successor relation
// is equivariant: steps(pi.cfg) = pi.steps(cfg) with acting threads
// relabelled.  Hence permutation-equivalent states have permutation-
// equivalent futures — the soundness core (DESIGN.md, symmetry section).
//
// --- canonicalisation --------------------------------------------------------
//
// canonicalize() computes a representative encoding that is a pure function
// of the orbit: class members are sorted by a per-thread signature (pc,
// registers, thread viewfront row — all components that transform
// covariantly), and the usually-rare signature ties are broken by
// enumerating the tie permutations and taking the lexicographically minimal
// full encoding.  When the tie blow-up exceeds kMaxTieCandidates the
// canonicaliser keeps the oversized tie groups fixed — the quotient is then
// under-approximated (some orbits split into several representatives),
// which only costs reduction, never soundness.  All permutations achieving
// the chosen encoding are reported; their count > 1 exactly when the state
// has a non-trivial (discovered) stabiliser, which callers that attach
// per-thread metadata to canonical states (sleep masks) must intersect
// over.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "lang/config.hpp"

namespace rc11::engine {

using lang::Config;
using lang::System;
using lang::ThreadId;

/// A permutation of thread ids, stored as slot_of[t] = the slot (new thread
/// id) thread t maps to.  Identity when slot_of[t] == t for all t.
using ThreadPerm = std::vector<ThreadId>;

class SymmetryReducer {
 public:
  /// Beyond this many tie-break candidates per state the oversized tie
  /// groups are left unpermuted (sound under-approximation of the quotient).
  static constexpr std::size_t kMaxTieCandidates = 720;
  /// Orbits larger than this disable the reduction outright (orbit closure
  /// of finals/invariants would dominate the run).  8! covers every
  /// realistic corpus instance.
  static constexpr std::size_t kMaxOrbit = 40320;

  /// Analyses `sys` and fixes the symmetry classes for its lifetime.  The
  /// system must outlive the reducer.
  explicit SymmetryReducer(const System& sys);

  /// True iff at least one class has >= 2 interchangeable threads (and the
  /// orbit bound holds) — i.e. the quotient is non-trivial.
  [[nodiscard]] bool symmetric() const noexcept { return symmetric_; }

  /// The symmetry classes of size >= 2, each a sorted list of thread ids.
  [[nodiscard]] const std::vector<std::vector<ThreadId>>& classes() const {
    return classes_;
  }

  /// |G|: the number of distinct thread permutations the quotient ranges
  /// over (product of class factorials; 1 when !symmetric()).
  [[nodiscard]] std::uint64_t group_size() const noexcept { return group_size_; }

  /// Result of canonicalising one configuration.
  struct Canonical {
    /// The representative encoding (lexicographically minimal over the
    /// candidate permutations); compare/intern this instead of the concrete
    /// encoding.
    std::vector<std::uint64_t> encoding;
    /// Every candidate permutation that achieves `encoding` (at least one).
    /// More than one means the state has a discovered stabiliser.
    std::vector<ThreadPerm> perms;
    /// False when a tie group exceeded kMaxTieCandidates and was left
    /// unpermuted: `perms` may then miss minimising permutations, so
    /// stabiliser-closure arguments (canonical sleep masks) do not hold —
    /// callers must degrade to the empty mask for this state.
    bool complete = true;
  };

  /// Canonicalises `cfg` into `out` (cleared first).  Reuses the reducer's
  /// scratch buffers, so a reducer instance must not be shared across
  /// threads without external synchronisation — drivers keep one per worker.
  void canonicalize(const Config& cfg, Canonical& out) const;

  /// Converts a per-thread bitmask (bit t = thread t) into canonical slot
  /// coordinates, intersecting over all reported permutations so a slot is
  /// only set when *every* concrete-to-canonical isomorphism agrees.
  [[nodiscard]] static std::uint64_t mask_to_canonical(
      std::uint64_t mask, const std::vector<ThreadPerm>& perms);

  /// Converts a canonical slot mask back into concrete thread coordinates of
  /// the configuration `perm` was reported for.  Any one permutation of the
  /// reporting set works (the canonical mask is already stabiliser-closed).
  [[nodiscard]] static std::uint64_t mask_from_canonical(
      std::uint64_t mask, const ThreadPerm& perm);

  /// Applies `perm` to `cfg`, returning the permuted configuration (a real
  /// configuration of the same system; used for orbit closure of finals,
  /// invariants and proof obligations).
  [[nodiscard]] Config permuted(const Config& cfg, const ThreadPerm& perm) const;

  /// Invokes `fn(member, perm)` once per *distinct* configuration in the
  /// orbit of `cfg` (including `cfg` itself, first, under the identity).
  /// Distinctness is by canonical state encoding, so stabiliser permutations
  /// do not repeat members.  `perm` maps `cfg`'s thread ids to `member`'s
  /// (member = permuted(cfg, perm)) — callers that also need the member's
  /// *steps* permute each rep step's acting thread through it.
  void for_each_orbit(
      const Config& cfg,
      const std::function<void(const Config&, const ThreadPerm&)>& fn) const;

  /// Invokes `fn(perm)` once per group element (all ∏|class|! permutations).
  void for_each_perm(const std::function<void(const ThreadPerm&)>& fn) const;

 private:
  void thread_signature(const Config& cfg, ThreadId t,
                        std::vector<std::uint64_t>& out) const;

  const System* sys_;
  ThreadId num_threads_ = 0;
  bool symmetric_ = false;
  std::uint64_t group_size_ = 1;
  std::vector<std::vector<ThreadId>> classes_;  ///< classes of size >= 2
  std::vector<bool> in_class_;                  ///< thread is in some class

  // Scratch (canonicalize is called per state on the hot path).
  mutable std::vector<std::uint64_t> sig_a_, sig_b_, candidate_;
  mutable ThreadPerm perm_scratch_;
};

}  // namespace rc11::engine
