#!/usr/bin/env sh
# Regenerates every checked-in bench baseline (bench/baseline_*.json) from a
# real bench run — the one reviewed command to run when a deliberate change
# moves the numbers.  Commit the refreshed baselines alongside that change;
# CI (check_bench_regression.py) diffs each bench's --json report against
# these files with exact state counts and a 30% throughput tolerance.
#
# Usage: tools/refresh_baselines.sh [BUILD_DIR]   (default: build)
#
# Notes:
#   * Run from the repository root on a quiet machine — wall-clock feeds the
#     states_per_s guard.
#   * Every bench runs to completion even when an earlier one fails: the
#     summary table at the end shows one OK / MISMATCH / BUILD-FAILED /
#     RUN-FAILED line per baseline, and the script exits nonzero if any row
#     is not OK.  A MISMATCH baseline is NOT written over — a refresh must
#     never launder a broken headline into CI.

set -u

build_dir=${1:-build}
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

if [ ! -d "$build_dir" ]; then
  echo "error: build directory '$build_dir' not found (configure first:" \
       "cmake -B $build_dir -S .)" >&2
  exit 1
fi

summary=""
failed=0

# baseline file <- bench binary, as wired in .github/workflows/ci.yml.
refresh() {
  baseline=$1
  bench=$2
  echo "=== $bench -> bench/$baseline ==="
  if ! cmake --build "$build_dir" -j --target "$bench"; then
    summary="$summary$baseline $bench BUILD-FAILED\n"
    failed=1
    return
  fi
  # Write to a scratch path first so a MISMATCH never clobbers the
  # checked-in baseline.
  scratch="$build_dir/refresh_$baseline"
  if ! out=$("$build_dir/bench/$bench" --json "$scratch" \
             --benchmark_filter=NONE); then
    summary="$summary$baseline $bench RUN-FAILED\n"
    failed=1
    return
  fi
  printf '%s\n' "$out"
  if printf '%s' "$out" | grep -q MISMATCH; then
    summary="$summary$baseline $bench MISMATCH\n"
    failed=1
    return
  fi
  mv "$scratch" "bench/$baseline"
  summary="$summary$baseline $bench OK\n"
}

refresh baseline_explore.json bench_semantics_throughput
refresh baseline_sample.json  bench_sample
refresh baseline_por.json     bench_por
refresh baseline_budget.json  bench_budget
refresh baseline_sym.json     bench_sym
refresh baseline_race.json    bench_race
refresh baseline_rf.json      bench_rf
refresh baseline_dist.json    bench_dist

echo
echo "=== refresh summary ==="
# shellcheck disable=SC2059 — $summary embeds its own \n separators.
printf "$summary" | while read -r baseline bench status; do
  printf '  %-24s %-28s %s\n' "$baseline" "$bench" "$status"
done

if [ "$failed" -ne 0 ]; then
  echo
  echo "error: at least one bench did not refresh cleanly — fix the" \
       "regression instead of refreshing its baseline" >&2
  exit 1
fi

echo
echo "Refreshed baselines:"
git diff --stat -- bench/baseline_explore.json bench/baseline_sample.json \
    bench/baseline_por.json bench/baseline_budget.json \
    bench/baseline_sym.json bench/baseline_race.json \
    bench/baseline_rf.json bench/baseline_dist.json
echo "Review the diff above, then commit the baselines with the change that" \
     "moved them."
