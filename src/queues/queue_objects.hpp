// rc11lib/queues/queue_objects.hpp
//
// Contextual refinement for a third object type — the synchronising FIFO
// queue.  Mirrors stacks/stack_objects.hpp: a QueueObject fills a client's
// enqueue/dequeue holes with either the abstract queue (objects/queue.hpp)
// or a concrete implementation.  The provided implementation is a bounded,
// spinlock-protected ring buffer:
//
//   Enq(v):  lock(); t <- tl; slot_{t mod K} := v; tl := t + 1; unlock()
//   Deq():   lock(); h <- hd; t <- tl;
//            if h = t { return Empty }
//            else     { r <- slot_{h mod K}; hd := h + 1; return r }
//            unlock()
//
// As with the stack, the releasing unlock is what carries the enqR/deqA
// publication guarantee, and the relaxed-unlock variant must fail
// refinement.  Clients must not exceed the capacity (no overflow handling:
// the ring would overwrite, which refinement checking flags as divergence).

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lang/system.hpp"
#include "og/catalog.hpp"

namespace rc11::queues {

using lang::Expr;
using lang::LocId;
using lang::Reg;
using lang::System;
using lang::ThreadBuilder;

/// Interface for anything that can fill a client's queue holes.
class QueueObject {
 public:
  virtual ~QueueObject() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  virtual void declare(System& sys) = 0;
  virtual void emit_enqueue(ThreadBuilder& tb, Expr value, bool releasing) = 0;
  virtual void emit_dequeue(ThreadBuilder& tb, Reg dst, bool acquiring) = 0;
};

/// The abstract synchronising FIFO queue.
class AbstractQueue final : public QueueObject {
 public:
  [[nodiscard]] std::string name() const override { return "abstract-queue"; }
  void declare(System& sys) override;
  void emit_enqueue(ThreadBuilder& tb, Expr value, bool releasing) override;
  void emit_dequeue(ThreadBuilder& tb, Reg dst, bool acquiring) override;

  [[nodiscard]] LocId queue_loc() const { return q_; }

 private:
  LocId q_ = 0;
};

/// Bounded spinlock-protected ring buffer (see file comment).
class LockedRingQueue final : public QueueObject {
 public:
  explicit LockedRingQueue(unsigned capacity = 2, bool releasing_unlock = true)
      : capacity_(capacity), releasing_unlock_(releasing_unlock) {}

  [[nodiscard]] std::string name() const override {
    return releasing_unlock_ ? "locked-ring-queue"
                             : "locked-ring-queue-broken-relaxed-unlock";
  }
  void declare(System& sys) override;
  void emit_enqueue(ThreadBuilder& tb, Expr value, bool releasing) override;
  void emit_dequeue(ThreadBuilder& tb, Reg dst, bool acquiring) override;

 private:
  struct ThreadRegs {
    Reg loc;   ///< spinlock CAS flag
    Reg head;  ///< local copy of hd
    Reg tail;  ///< local copy of tl
  };
  ThreadRegs& regs_for(ThreadBuilder& tb);
  void emit_lock(ThreadBuilder& tb);
  void emit_unlock(ThreadBuilder& tb);

  unsigned capacity_;
  bool releasing_unlock_;
  LocId lk_ = 0;
  LocId hd_ = 0;
  LocId tl_ = 0;
  std::vector<LocId> slots_;
  og::PerThreadRegs<ThreadRegs> regs_;
};

using QueueClientProgram = std::function<void(System&, QueueObject&)>;

[[nodiscard]] System instantiate(const QueueClientProgram& client,
                                 QueueObject& object);

struct QueueClientArtifacts {
  std::vector<LocId> vars;
  std::vector<Reg> regs;
};

/// Publication through the queue: t0 writes d := 5 then enqueues the message
/// (releasing); t1 dequeues once (acquiring) and reads d.
QueueClientProgram publication_client(QueueClientArtifacts* artifacts = nullptr);

/// t0 enqueues `count` distinct values; t1 dequeues the same number of times
/// (each may return Empty).  FIFO: successful dequeues appear in enqueue
/// order.
QueueClientProgram pipeline_client(unsigned count,
                                   QueueClientArtifacts* artifacts = nullptr);

}  // namespace rc11::queues
