// rc11lib/support/intern.hpp
//
// String interning for program identifiers (global variables, registers,
// objects, method names).  The semantics engine works exclusively with dense
// integer ids; names are kept only for diagnostics and pretty-printing.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rc11::support {

/// Dense id assigned by a SymbolTable.  Ids are table-local.
using SymbolId = std::uint32_t;

inline constexpr SymbolId kInvalidSymbol = UINT32_MAX;

/// Bidirectional name <-> dense-id map.  Not thread-safe by design: each
/// System (lang/program.hpp) owns its own tables, and exploration threads
/// never mutate them after construction.
class SymbolTable {
 public:
  /// Returns the id for `name`, interning it on first use.
  SymbolId intern(std::string_view name) {
    if (const auto it = ids_.find(std::string{name}); it != ids_.end()) {
      return it->second;
    }
    const auto id = static_cast<SymbolId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name` if already interned, kInvalidSymbol otherwise.
  [[nodiscard]] SymbolId lookup(std::string_view name) const {
    const auto it = ids_.find(std::string{name});
    return it == ids_.end() ? kInvalidSymbol : it->second;
  }

  [[nodiscard]] const std::string& name(SymbolId id) const { return names_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] bool contains(std::string_view name) const {
    return lookup(name) != kInvalidSymbol;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
};

}  // namespace rc11::support
