file(REMOVE_RECURSE
  "CMakeFiles/bench_prop10_ticket_sim.dir/bench_prop10_ticket_sim.cpp.o"
  "CMakeFiles/bench_prop10_ticket_sim.dir/bench_prop10_ticket_sim.cpp.o.d"
  "bench_prop10_ticket_sim"
  "bench_prop10_ticket_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop10_ticket_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
