// rc11lib/explore/sharded_visited.hpp
//
// A lock-striped visited set over canonical state encodings, shared by the
// parallel exploration engine (explorer.cpp), the parallel proof-outline
// checker and the parallel refinement graph builder.
//
// Layout: N shards (N a power of two), each an independently locked
// support::InternedWordSet — an open-addressing fingerprint table whose
// 16-byte entries point into a per-shard append-only varint arena.  A state
// is routed to the shard named by the *top* bits of its 64-bit encoding
// digest, and the digest then indexes the open-addressing table inside the
// shard, so the two levels consume disjoint bits and states spread evenly.
// There is no per-state heap allocation: duplicates touch only the table,
// and new states append their compressed encoding to the shard arena.
//
// Soundness: exactly like the sequential visited set, a fingerprint hit is
// confirmed against the complete stored encoding before an insert is
// refused — a digest collision can never make exploration drop a genuinely
// new state, it only costs a memcmp.  Because each encoding maps to exactly
// one shard, the per-shard mutex makes insert() linearisable: of two racing
// inserts of the same encoding exactly one returns true, which is the
// property the exploration engine needs (every reachable state is expanded
// exactly once, regardless of which worker discovered it).

#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "support/hash.hpp"
#include "support/intern.hpp"

namespace rc11::explore {

class ShardedVisitedSet {
 public:
  /// `shard_count` is rounded up to a power of two (at least 1).  64 shards
  /// keep the expected queue depth per mutex negligible for any realistic
  /// worker count while costing only a few KiB empty.
  explicit ShardedVisitedSet(unsigned shard_count = 64) {
    unsigned n = 1;
    while (n < shard_count && n < (1U << 16)) n <<= 1;
    shards_ = std::vector<Shard>(n);
    shard_shift_ = 64U;
    for (unsigned v = n; v > 1; v >>= 1) shard_shift_ -= 1;
  }

  /// Returns true iff the encoding was newly inserted.  Thread-safe.  The
  /// words are only copied (compressed, into the shard arena) when they are
  /// genuinely new; a duplicate allocates nothing.
  bool insert(std::span<const std::uint64_t> encoding) {
    const std::uint64_t digest = support::hash_words(encoding);
    Shard& shard = shards_[shard_of(digest)];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.set.insert(encoding, digest);
  }

  /// Total states inserted.  Takes each shard lock briefly, so it is safe
  /// (if approximate) while inserts are in flight; callers read it after
  /// workers have joined for an exact count.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.set.size();
    }
    return total;
  }

  /// Total heap footprint of all shards (arena + fingerprint tables), for
  /// ExploreStats::visited_bytes.  Same locking discipline as size().
  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.set.bytes();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    support::InternedWordSet set;
  };

  [[nodiscard]] std::size_t shard_of(std::uint64_t digest) const noexcept {
    return shard_shift_ >= 64U ? 0 : static_cast<std::size_t>(digest >> shard_shift_);
  }

  std::vector<Shard> shards_;
  unsigned shard_shift_ = 64;
};

}  // namespace rc11::explore
