// rc11lib/refinement/refinement.hpp
//
// Contextual refinement for weak-memory libraries (Section 6).
//
// Definition 5 (state refinement) compares *client projections*: the client
// registers, the client variables' operation histories and covered set, and
// per-thread observability — a concrete state refines an abstract state when
// the local client states agree, the client covered sets agree, and every
// thread's concrete observable-write set is a subset of its abstract one
// (γ_C.Obs(t, x) ⊆ γ_A.Obs(t, x)).  Operationally we require the client
// operation histories to be *equal* (the simulation game makes the abstract
// client mirror concrete client steps one-for-one, which is how the paper's
// simulations are constructed too) and Obs inclusion then reduces to a
// pointwise viewfront-rank comparison.
//
// Definition 8 (forward simulation for synchronisation-free clients) is
// decided as a simulation *game* on the product of the two finite state
// graphs: candidate pairs are those satisfying the client-observation clause;
// the greatest fixpoint removes every pair with a concrete step that can be
// matched neither by an abstract stutter nor by a single abstract step.  The
// simulation exists iff the initial pair survives (Theorem 8.1 then gives
// C[AO] ⊑ C[CO]).
//
// A bounded trace-inclusion checker for Definitions 6/7 (stutter-free client
// traces) doubles as an independent oracle on small instances.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/budget.hpp"
#include "engine/sample.hpp"
#include "lang/config.hpp"
#include "witness/witness.hpp"

namespace rc11::refinement {

using lang::Config;
using lang::System;
using lang::ThreadId;

/// The Definition 5 client projection of a configuration.
struct ClientProjection {
  /// Exact-match part: client registers and the full client-variable
  /// operation histories including covered flags (equal histories ⇒ equal
  /// cvd, which Def. 5 requires).
  std::vector<std::uint64_t> exact;
  /// Inclusion part: per (thread, client variable) viewfront ranks; the
  /// concrete entry must be >= the abstract entry (higher viewfront = fewer
  /// observable writes).
  std::vector<std::uint32_t> view_ranks;

  friend bool operator==(const ClientProjection&, const ClientProjection&) = default;
};

/// Extracts the client projection (client-tagged registers and locations
/// only; library state and pcs are invisible to the client).
[[nodiscard]] ClientProjection project_client(const System& sys, const Config& cfg);

/// Definition 5: does `conc` refine `abs`?
[[nodiscard]] bool client_refines(const ClientProjection& abs,
                                  const ClientProjection& conc);

/// An explicit reachable-state graph of a system.
struct StateGraph {
  std::vector<Config> states;
  std::vector<std::vector<std::uint32_t>> succ;  ///< adjacency (state indices)
  /// Per-edge human-readable step labels, parallel to `succ` (only when the
  /// graph was built with want_labels; empty otherwise).
  std::vector<std::vector<std::string>> labels;
  /// Per-edge acting thread, parallel to `succ` (want_labels builds only);
  /// lets counterexample runs over this graph become replayable witnesses.
  std::vector<std::vector<ThreadId>> threads;
  std::uint32_t initial = 0;
  /// Why the build's exploration ended; anything but Complete means the
  /// graph is missing states and downstream verdicts are unreliable.
  engine::StopReason stop = engine::StopReason::Complete;
  bool truncated = false;  ///< stop != Complete (compat mirror)

  [[nodiscard]] std::size_t num_states() const { return states.size(); }
  [[nodiscard]] std::size_t num_edges() const {
    std::size_t n = 0;
    for (const auto& e : succ) n += e.size();
    return n;
  }
};

/// Builds the full reachable graph (up to max_states).  With want_labels,
/// edges carry step descriptions (costs time and memory; used for
/// counterexample reporting and DOT export).
///
/// num_threads follows the explore::ExploreOptions convention (1 sequential,
/// 0 hardware concurrency).  The build runs in two phases for every thread
/// count — collect all reachable states through the shared reachability
/// driver, then resolve every state's successor edges against the index —
/// and numbers states by canonical encoding, so the resulting graph is
/// *identical for every thread count*.
///
/// With `por`, both phases use the ClientInvisible ample policy of
/// engine::SystemTransitions: states are collected over the reduced relation
/// and every edge is a real single step of that same relation (no chain
/// collapse — graph consumers need single-step edges), so counterexample
/// runs over a reduced graph still replay through the full semantics.
/// Reduced here means only projection-invisible steps are ever pruned, which
/// preserves the stutter-closed projection traces the refinement checkers
/// compare (docs/SEMANTICS.md §9).
struct GraphOptions {
  std::uint64_t max_states = 1'000'000;
  bool want_labels = false;
  unsigned num_threads = 1;
  bool por = false;
  /// Resource governance (same semantics as explore::ExploreOptions):
  /// exceeding a budget stops the build with the matching StateGraph::stop.
  /// Checkpoint/resume is not offered for graph builds — refinement checks
  /// build two graphs per run, so a single checkpoint file is ambiguous.
  std::uint64_t max_visited_bytes = 0;  ///< bytes; 0 = unlimited
  std::uint64_t deadline_ms = 0;        ///< wall clock; 0 = none
  const engine::CancelToken* cancel = nullptr;
  engine::FaultPlan fault;
  /// Coverage mode (engine/sample.hpp).  Under Strategy::Sample phase 1
  /// collects the states seeded random episodes cross and phase 2 resolves
  /// edges within that subset (edges to uncollected states are dropped —
  /// the same rule every truncated build already follows).  Every state and
  /// edge of a sampled graph is real; the graph is marked truncated
  /// (StopReason::EpisodeCap) because it may be missing states.
  engine::Strategy mode = engine::Strategy::Exhaustive;
  /// Tuning for mode == Strategy::Sample; ignored otherwise.
  engine::SampleOptions sample;
};

[[nodiscard]] StateGraph build_graph(const System& sys,
                                     const GraphOptions& options);

/// Positional compat overload (historic signature).
[[nodiscard]] StateGraph build_graph(const System& sys,
                                     std::uint64_t max_states = 1'000'000,
                                     bool want_labels = false,
                                     unsigned num_threads = 1,
                                     bool por = false);

struct SimulationOptions {
  std::uint64_t max_states = 1'000'000;  ///< per system
  /// Workers for graph construction and client projection (the fixpoint
  /// itself stays sequential); same convention as ExploreOptions.
  unsigned num_threads = 1;
  /// Build both state graphs with client-invisible ample-set POR (see
  /// build_graph).  Verdicts agree with the unreduced check on the
  /// RC11_POR_CROSSCHECK corpus; default off.
  bool por = false;
  /// Resource governance, applied to *each* graph build separately (a
  /// deadline therefore bounds each phase, not the whole check); the
  /// cancellation token is shared, so one Ctrl-C stops whichever phase is
  /// running.
  std::uint64_t max_visited_bytes = 0;  ///< bytes per graph; 0 = unlimited
  std::uint64_t deadline_ms = 0;        ///< wall clock per graph; 0 = none
  const engine::CancelToken* cancel = nullptr;
  engine::FaultPlan fault;
  /// Coverage mode.  Under Strategy::Sample only the *concrete* graph is
  /// sampled — the abstract graph is the specification and must be complete
  /// for the game to be meaningful.  The simulation fixpoint needs the full
  /// concrete edge relation (missing edges would make pairs survive
  /// vacuously), so a sampled simulation check always reports truncated with
  /// a diagnosis; use check_trace_inclusion for definite sampled verdicts.
  engine::Strategy mode = engine::Strategy::Exhaustive;
  engine::SampleOptions sample;  ///< tuning for Sample; ignored otherwise
  // Thread-symmetry reduction is deliberately *not* offered here: the
  // simulation fixpoint iterates over candidate pairs of the full graphs
  // and quotienting it would change which pairs the diagnosis chain can
  // cite.  rc11-refine rejects --symmetry for the simulation check and
  // points at the trace-inclusion game, which supports it.
};

struct SimulationResult {
  bool holds = false;
  bool truncated = false;  ///< a graph hit its bound: outcome unreliable
  std::uint64_t abstract_states = 0;
  std::uint64_t concrete_states = 0;
  std::uint64_t candidate_pairs = 0;
  std::uint64_t surviving_pairs = 0;
  std::uint64_t refinement_iterations = 0;
  std::string diagnosis;  ///< human-readable failure hint
  /// On failure: step labels of a shortest concrete run into a state no
  /// abstract state can be paired with (empty if the failure is only due to
  /// cyclic matching constraints rather than a dead state).
  std::vector<std::string> counterexample;
  /// Structured form of `counterexample`: a replayable run of the *concrete*
  /// system into the diverging state (validate with witness::replay against
  /// concrete_sys).  Present iff counterexample is non-empty.
  std::optional<witness::Witness> witness;
};

/// Decides whether a Definition 8 forward simulation exists between
/// `abstract_sys` (the client using AO) and `concrete_sys` (the same client
/// using CO).  `holds == true` establishes C[AO] ⊑ C[CO] for this client
/// (Theorem 8.1).
[[nodiscard]] SimulationResult check_forward_simulation(
    const System& abstract_sys, const System& concrete_sys,
    const SimulationOptions& options = {});

struct TraceInclusionOptions {
  std::uint64_t max_states = 200'000;       ///< per state graph
  std::uint64_t max_product_nodes = 500'000;  ///< subset-construction bound
  /// Workers for graph construction and client projection (the subset
  /// construction stays sequential); same convention as ExploreOptions.
  unsigned num_threads = 1;
  /// Build both state graphs with client-invisible ample-set POR (see
  /// build_graph).  Verdicts agree with the unreduced check on the
  /// RC11_POR_CROSSCHECK corpus; default off.
  bool por = false;
  /// Resource governance for the graph builds (per build; see
  /// SimulationOptions for the sharing semantics).
  std::uint64_t max_visited_bytes = 0;  ///< bytes per graph; 0 = unlimited
  std::uint64_t deadline_ms = 0;        ///< wall clock per graph; 0 = none
  const engine::CancelToken* cancel = nullptr;
  engine::FaultPlan fault;
  /// Coverage mode.  Under Strategy::Sample only the *concrete* graph is
  /// sampled (the abstract side is the specification and stays complete) and
  /// the game runs over the covered concrete subgraph: every sampled
  /// concrete run is a real execution, so a refinement violation found this
  /// way is *definite* — holds == false with a replayable witness — while
  /// "no violation" stays inconclusive (truncated == true, a lower bound).
  engine::Strategy mode = engine::Strategy::Exhaustive;
  engine::SampleOptions sample;  ///< tuning for Sample; ignored otherwise
  /// Thread-symmetry quotient of the *product* construction: when both
  /// systems have identical interchangeable-thread classes
  /// (engine::SymmetryReducer), product nodes (concrete state, abstract
  /// match set) are deduplicated modulo simultaneous thread permutation of
  /// both sides.  Client projections permute covariantly, so refinement of
  /// a node and of its permuted image coincide and an empty match set is
  /// reachable in the quotient iff it is in the full product — verdicts and
  /// witnesses are unchanged, only product_nodes shrinks (arena nodes stay
  /// concrete, so counterexample runs replay as before).  A sound no-op
  /// when either system has no interchangeable threads or the classes
  /// differ; ignored under a sampled concrete graph (the permuted image of
  /// a sampled state need not be covered).  Composes with `por` under the
  /// same corpus-crosschecked caveat as por itself.  Default off.
  bool symmetry = false;
};

struct TraceInclusionResult {
  bool holds = false;
  bool truncated = false;
  std::uint64_t product_nodes = 0;  ///< (concrete state, abstract set) nodes
  std::string what;  ///< description of an unmatchable concrete step
  /// Replayable concrete run ending in the unmatchable step (validate with
  /// witness::replay against concrete_sys).  Present iff holds is false and
  /// the game reached a genuinely unmatchable step (not on truncation).
  std::optional<witness::Witness> witness;
};

/// Definitions 6/7 as a trace-inclusion game, decided by subset construction:
/// for every concrete run there must exist an abstract run that pointwise
/// refines it (Def. 5's ⊑ per state, with the abstract side free to stutter).
/// Tracks, for each concrete trace prefix, the set of abstract states that
/// can match it; a reachable empty set is a refinement violation and its
/// step is reported as the witness.  This is the direct (game) form of
/// Definition 6; check_forward_simulation is the paper's sufficient
/// condition (Def. 8 / Thm. 8.1) and implies it.
[[nodiscard]] TraceInclusionResult check_trace_inclusion(
    const System& abstract_sys, const System& concrete_sys,
    const TraceInclusionOptions& options = {});

}  // namespace rc11::refinement
