// rc11-run — command-line driver: parse a program file, exhaustively explore
// its RC11 RAR behaviours and print the final outcome set.
//
// Usage:
//   rc11-run [options] program.rc11
//
// Options (see tools/cli_common.hpp for the flags shared by every tool):
//   --max-states N      exploration bound (default 1000000)
//   --threads N         exploration workers (0 = hardware, default 1)
//   --workers N         crash-tolerant multi-process exploration: fork N
//                       supervised worker processes, each owning a hash
//                       partition of the state space; dead/hung/corrupted
//                       workers are restarted and only unacknowledged work
//                       is replayed.  Verdicts, outcomes and stats are
//                       byte-identical for every N.  Composes with --por,
//                       --rf-quotient, budgets and --checkpoint; rejected
//                       with --symmetry, --strategy sample, --threads > 1
//                       and --resume.  If a worker is lost for good (retry
//                       budget exhausted) the run exits 3 with a partial
//                       report.  Tuning: RC11_DIST_BATCH, RC11_DIST_HANG_MS,
//                       RC11_DIST_BACKOFF_MS, RC11_DIST_RETRIES
//   --por               ample-set partial-order reduction (sound for the
//                       outcome set; composes with --threads and --witness)
//   --symmetry          thread-symmetry quotient + sleep-set pruning for
//                       programs with interchangeable threads (identical
//                       program text modulo thread id); exact for verdicts,
//                       outcomes and --invariant violations, composes with
//                       --por/--threads/budgets/--checkpoint; a sound no-op
//                       when no threads are interchangeable
//   --rf-quotient       execution-graph quotient + sleep-set pruning: states
//                       are keyed by canonical reads-from/modification-order
//                       data plus per-thread progress, merging configurations
//                       that differ only in dead view metadata; exact for
//                       verdicts, outcome sets and --invariant violations
//                       (the invariant's view footprint is pinned into the
//                       key); composes with --por/--threads/budgets/
//                       --checkpoint; rejected with --symmetry (v1), with
//                       --strategy sample and under the SC model
//   --strategy S        coverage strategy: exhaustive (default), por (same
//                       as --por), or sample[:N] — N seeded random schedules
//                       (episodes) instead of enumeration; results are a
//                       lower bound and the run exits 3 unless a violation
//                       is found (exit 2, with a replayable witness)
//   --seed S            RNG seed for --strategy sample (default 0); same
//                       program + flags + seed reproduces the run exactly
//   --stats             also print peak frontier / visited memory / POR savings
//   --json FILE         write a machine-readable run summary
//   --disassemble       print the compiled per-thread code first
//   --no-ctview         ablation A1: disable cross-component view transfer
//   --no-covered        ablation A2: disable covered-set enforcement
//   --raw-timestamps    ablation A3: hash raw rational timestamps
//   --invariant EXPR    check an assertion (outline grammar) at every state
//   --witness FILE      write the first violation as a JSON witness (implies
//                       trace tracking; minimized before emission)
//   --replay FILE       re-execute a JSON witness against the program instead
//                       of exploring; exit 0 iff every step replays
//   --deadline-ms MS    wall-clock budget; exceeded runs stop with a partial
//                       report (0 = none)
//   --mem-budget BYTES  visited-set memory budget, with optional K/M/G
//                       suffix (0 = unlimited)
//   --checkpoint FILE   if the run stops early (budget, Ctrl-C, fault),
//                       save a resumable checkpoint here
//   --resume FILE       seed the run from a checkpoint saved by --checkpoint
//                       (--por must match the checkpointed run)
//
// SIGINT/SIGTERM drain the workers: the tool still prints its partial
// report, writes --json/--checkpoint files, and exits 3.  RC11_FAULT
// (comma-separated insert:N | stall:N:MS | mem:N | crash:N[:C] | hang:N[:C]
// | corrupt:N[:C]) injects faults for robustness testing; the process-level
// kinds fire inside --workers worker processes at the N-th dispatched batch
// and exercise the supervisor's recovery path.
//
// Exit status: 0 on success, 1 on usage/parse errors, 2 if an --invariant
// violation was found or a --replay diverged, 3 if exploration stopped early
// for any reason (bound, budget, deadline, interrupt, injected fault).

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "cli_common.hpp"
#include "engine/checkpoint.hpp"
#include "explore/dot.hpp"
#include "explore/explorer.hpp"
#include "parser/parser.hpp"
#include "refinement/refinement.hpp"
#include "witness/witness.hpp"

namespace {

int usage() {
  std::cerr << "usage: rc11-run " << rc11::cli::kCommonUsage
            << " [--disassemble] [--no-ctview] [--no-covered] "
               "[--raw-timestamps] [--dot FILE] [--invariant EXPR] "
               "program.rc11\n";
  return rc11::cli::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rc11;

  std::string path;
  cli::CommonOptions common;
  memsem::SemanticsOptions sem;
  bool disassemble = false;
  std::string dot_path;
  std::string invariant_src;

  for (int i = 1; i < argc; ++i) {
    switch (cli::parse_common_flag(argc, argv, i, common)) {
      case cli::FlagStatus::Consumed:
        continue;
      case cli::FlagStatus::Error:
        return usage();
      case cli::FlagStatus::NotMine:
        break;
    }
    const std::string arg = argv[i];
    if (arg == "--disassemble") {
      disassemble = true;
    } else if (arg == "--no-ctview") {
      sem.cross_component_view_transfer = false;
    } else if (arg == "--no-covered") {
      sem.enforce_covered = false;
    } else if (arg == "--raw-timestamps") {
      sem.canonical_timestamps = false;
    } else if (arg == "--dot") {
      if (++i >= argc) return usage();
      dot_path = argv[i];
    } else if (arg == "--invariant") {
      if (++i >= argc) return usage();
      invariant_src = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  if (const std::string err = cli::resolve_strategy(common); !err.empty()) {
    std::cerr << "rc11-run: " << err << "\n";
    return cli::kExitUsage;
  }

  try {
    auto program = parser::parse_file(path);
    program.sys.set_options(sem);

    if (!common.replay_path.empty()) {
      return cli::run_replay(program.sys, common);
    }

    if (disassemble) {
      std::cout << program.sys.disassemble() << "\n";
    }

    std::optional<engine::Checkpoint> resume;
    if (!common.resume_path.empty()) {
      resume = engine::load_checkpoint(common.resume_path);
      std::cout << "resuming from " << common.resume_path << " ("
                << resume->states.size() << " state(s), stopped: "
                << engine::to_string(resume->stop) << ")\n";
    }

    explore::ExploreOptions opts;
    opts.max_states = common.max_states;
    opts.num_threads = common.num_threads;
    opts.por = common.por;
    opts.symmetry = common.symmetry;
    opts.rf_quotient = common.rf_quotient;
    opts.mode = common.mode;
    opts.sample = common.sample;
    opts.max_visited_bytes = common.max_visited_bytes;
    opts.deadline_ms = common.deadline_ms;
    opts.cancel = cli::install_signal_cancel();
    opts.fault = engine::FaultPlan::from_env();
    opts.resume = resume ? &*resume : nullptr;
    opts.checkpoint_path = common.checkpoint_path;
    opts.workers = common.workers;

    explore::Invariant invariant;
    if (!invariant_src.empty()) {
      const auto assertion = parser::parse_assertion(program, invariant_src);
      if (common.rf_quotient) {
        // Pin the invariant's view footprint into the quotient key so its
        // verdict is a function of the key (class-invariant).  Parsed
        // assertions are built from the footprinted factories, so an
        // unknown footprint cannot arise from the grammar — guard anyway.
        const auto& fp = assertion.footprint();
        if (fp.everything) {
          std::cerr << "rc11-run: --rf-quotient cannot check this "
                       "--invariant: its view footprint is unknown\n";
          return cli::kExitUsage;
        }
        for (const auto& e : fp.entries) opts.rf_pins.entries.push_back(e);
      }
      invariant = [assertion, invariant_src](
                      const lang::System& s,
                      const lang::Config& c) -> std::optional<std::string> {
        if (assertion.eval(s, c)) return std::nullopt;
        return "invariant " + invariant_src + " violated";
      };
      // A witness needs parent links; traces are how the explorer builds them.
      if (!common.witness_path.empty()) opts.track_traces = true;
    }

    if (!dot_path.empty()) {
      const auto graph =
          refinement::build_graph(program.sys, opts.max_states,
                                  /*want_labels=*/true, opts.num_threads);
      std::ofstream out{dot_path};
      out << explore::to_dot(program.sys, graph);
      std::cout << "state graph (" << graph.num_states()
                << " states) written to " << dot_path << "\n";
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto result = explore::explore(program.sys, opts, invariant);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::cout << "states:      " << result.stats.states << "\n"
              << "transitions: " << result.stats.transitions << "\n"
              << "finals:      " << result.stats.finals << "\n"
              << "blocked:     " << result.stats.blocked << "\n";
    if (common.stats) {
      cli::print_stats(result.stats, common.por, common.symmetry,
                       common.rf_quotient, wall_s);
      if (common.workers > 0) cli::print_dist_stats(result.dist);
    }
    if (result.truncated) {
      std::cout << "WARNING: exploration stopped early — "
                << cli::describe_stop(result.stop)
                << "; results are a lower bound\n";
      if (!common.checkpoint_path.empty()) {
        std::cout << "checkpoint written to " << common.checkpoint_path
                  << " (continue with --resume)\n";
      }
    }

    // Print the outcome set over all registers, in declaration order.
    std::vector<lang::Reg> regs;
    std::vector<std::string> names;
    for (lang::ThreadId t = 0; t < program.sys.num_threads(); ++t) {
      for (lang::RegId r = 0; r < program.sys.num_regs(t); ++r) {
        regs.push_back(lang::Reg{t, r});
        names.push_back(program.sys.reg_name(t, r));
      }
    }
    const auto outcomes = explore::final_register_values(program.sys, result, regs);
    std::cout << "\nfinal register outcomes (" << outcomes.size() << "):\n";
    for (const auto& tuple : outcomes) {
      std::cout << "  ";
      for (std::size_t i = 0; i < tuple.size(); ++i) {
        std::cout << (i ? ", " : "") << names[i] << "=" << tuple[i];
      }
      std::cout << "\n";
    }

    if (!common.json_path.empty()) {
      auto summary = witness::Json::object();
      summary.set("tool", witness::Json::string("rc11-run"));
      summary.set("program", witness::Json::string(path));
      summary.set("strategy",
                  witness::Json::string(engine::to_string(common.mode)));
      if (common.mode == engine::Strategy::Sample) {
        summary.set("seed",
                    witness::Json::integer(
                        static_cast<std::int64_t>(common.sample.seed)));
      }
      summary.set("truncated", witness::Json::boolean(result.truncated));
      summary.set("stop",
                  witness::Json::string(engine::to_string(result.stop)));
      summary.set("violations",
                  witness::Json::integer(
                      static_cast<std::int64_t>(result.violations.size())));
      summary.set("outcomes", witness::Json::integer(
                                  static_cast<std::int64_t>(outcomes.size())));
      summary.set("stats", cli::stats_json(result.stats));
      cli::write_json_summary(summary, common.json_path);
    }

    if (!result.violations.empty()) {
      const auto& v = result.violations.front();
      std::cout << "\nVIOLATION: " << v.what << "\n";
      for (const auto& step : v.trace) {
        std::cout << "  " << step << "\n";
      }
      if (!common.witness_path.empty()) {
        if (v.witness) {
          cli::write_witness(program.sys, *v.witness, common.witness_path);
        } else {
          std::cout << "no witness recorded (trace tracking was off)\n";
        }
      }
      return cli::kExitFail;
    }
    if (!common.witness_path.empty()) {
      std::cout << "no violation found; " << common.witness_path
                << " not written\n";
    }
    return result.truncated ? cli::kExitInconclusive : cli::kExitOk;
  } catch (const std::exception& e) {
    std::cerr << "rc11-run: " << e.what() << "\n";
    return cli::kExitUsage;
  }
}
