// rc11lib/explore/sharded_visited.hpp
//
// Compatibility shim: the lock-striped visited set moved into the shared
// engine layer (engine/sharded_visited.hpp) when the three checkers were
// ported onto engine::visit_reachable.  Existing includes and the
// explore::ShardedVisitedSet spelling keep working.

#pragma once

#include "engine/sharded_visited.hpp"

namespace rc11::explore {

using ShardedVisitedSet = engine::ShardedVisitedSet;

}  // namespace rc11::explore
