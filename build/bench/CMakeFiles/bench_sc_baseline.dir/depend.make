# Empty dependencies file for bench_sc_baseline.
# This may be replaced when dependencies are built.
